"""The batch engine: unified specs, determinism, caching, deprecations."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ChurnPlan,
    CrashPlan,
    FaultPlan,
    ResultCache,
    RunOptions,
    RunSummary,
    ScenarioScale,
    get_scenario,
    run,
    run_batch,
    validate_run,
)
from repro.experiments.engine import cache_key, code_version

TINY = ScenarioScale.tiny()


@pytest.fixture(scope="module")
def mixed_batch():
    """Two serial, uncached runs of the tiny Mixed scenario."""
    return run_batch(get_scenario("Mixed"), TINY, seeds=(0, 1), cache=False)


# ----------------------------------------------------------------------
# The unified run() entry point
# ----------------------------------------------------------------------
def test_run_accepts_scenario_object():
    result = run(get_scenario("Mixed"), TINY, seed=0)
    assert result.metrics.completed_jobs > 0


def test_run_accepts_scenario_name():
    by_name = run("Mixed", TINY, seed=0).summary()
    by_object = run(get_scenario("Mixed"), TINY, seed=0).summary()
    assert by_name.to_dict() == by_object.to_dict()


def test_run_accepts_baseline_name():
    result = run("centralized", TINY, seed=0)
    assert result.baseline == "centralized"
    assert result.metrics.completed_jobs > 0


def test_run_accepts_crash_plan():
    result = run(CrashPlan(), TINY, seed=0, options=RunOptions(failsafe=True))
    assert result.metrics.completed_jobs > 0


def test_run_accepts_churn_plan():
    result = run(ChurnPlan(), TINY, seed=0)
    assert result.metrics.completed_jobs > 0


def test_run_accepts_fault_plan():
    result = run(FaultPlan(), TINY, seed=0)
    assert result.metrics.completed_jobs > 0
    assert result.network["reliable_delivered"] > 0


def test_fault_plan_rejects_unknown_options():
    with pytest.raises(ConfigurationError):
        run(FaultPlan(), TINY, seed=0, options=RunOptions(config_overrides={}))


def test_fault_batch_round_trips_summaries(tmp_path):
    cache = ResultCache(tmp_path)
    first = run_batch(
        FaultPlan(),
        TINY,
        seeds=(0, 1),
        cache=cache,
        options=RunOptions(reliability=True),
    )
    again = run_batch(
        FaultPlan(),
        TINY,
        seeds=(0, 1),
        cache=cache,
        options=RunOptions(reliability=True),
    )
    assert [s.to_dict() for s in first] == [s.to_dict() for s in again]
    assert cache.hits == 2
    assert all("net_reliable_delivered" in s.extras for s in first)


def test_fault_cache_key_covers_plan_and_options():
    plan = FaultPlan()
    keys = set()
    for plan_dict, reliability in [
        (dataclasses.asdict(plan), True),
        (dataclasses.asdict(plan), False),
        (dataclasses.asdict(dataclasses.replace(plan, loss=0.2)), True),
    ]:
        payload = {
            "kind": "faults",
            "plan": plan_dict,
            "reliability": reliability,
            "failsafe": True,
            "scenario_name": "iMixed",
            "probe_interval": None,
            "scale": dataclasses.asdict(TINY),
            "seed": 0,
        }
        keys.add(cache_key(payload))
    assert len(keys) == 3


def test_run_rejects_unknown_spec():
    with pytest.raises(ConfigurationError):
        run("NoSuchScenarioOrBaseline", TINY)
    with pytest.raises(ConfigurationError):
        run(42, TINY)


def test_run_rejects_unknown_options():
    with pytest.raises(ConfigurationError):
        run(get_scenario("Mixed"), TINY, seed=0, options=RunOptions(failsafe=True))
    with pytest.raises(ConfigurationError):
        run("centralized", TINY, seed=0, options=RunOptions(config_overrides={}))


# ----------------------------------------------------------------------
# Determinism: parallel == serial, batch == single run
# ----------------------------------------------------------------------
def test_parallel_batch_bit_identical_to_serial(mixed_batch):
    parallel = run_batch(
        get_scenario("Mixed"), TINY, seeds=(0, 1), parallel=2, cache=False
    )
    assert [s.to_dict() for s in parallel] == [
        s.to_dict() for s in mixed_batch
    ]


def test_batch_matches_single_runs(mixed_batch):
    single = run(get_scenario("Mixed"), TINY, seed=1).summary()
    assert mixed_batch[1].to_dict() == single.to_dict()


def test_batch_preserves_seed_order_and_duplicates():
    summaries = run_batch(
        get_scenario("Mixed"), TINY, seeds=(1, 0, 1), cache=False
    )
    assert [s.seed for s in summaries] == [1, 0, 1]
    assert summaries[0].to_dict() == summaries[2].to_dict()


# ----------------------------------------------------------------------
# The result cache
# ----------------------------------------------------------------------
def test_cache_hit_on_second_batch(tmp_path):
    cache = ResultCache(tmp_path)
    first = run_batch(
        get_scenario("Mixed"), TINY, seeds=(0, 1), cache=cache
    )
    assert (cache.hits, cache.misses, cache.stores) == (0, 2, 2)
    assert len(cache) == 2
    second = run_batch(
        get_scenario("Mixed"), TINY, seeds=(0, 1), cache=cache
    )
    assert (cache.hits, cache.misses, cache.stores) == (2, 2, 2)
    assert [s.to_dict() for s in second] == [s.to_dict() for s in first]


def test_cache_misses_on_scenario_field_change(tmp_path):
    cache = ResultCache(tmp_path)
    base = get_scenario("Mixed")
    run_batch(base, TINY, seeds=(0,), cache=cache)
    changed = dataclasses.replace(base, submission_interval=11.0)
    run_batch(changed, TINY, seeds=(0,), cache=cache)
    assert cache.hits == 0
    assert cache.misses == 2
    assert len(cache) == 2


def test_cache_key_separates_seeds_scales_and_options():
    base = get_scenario("Mixed")
    keys = set()
    for scale, seed, overrides in [
        (TINY, 0, None),
        (TINY, 1, None),
        (ScenarioScale.small(), 0, None),
        (TINY, 0, {"accept_wait": 30.0}),
    ]:
        payload = {
            "kind": "scenario",
            "scenario": base.to_dict(),
            "config_overrides": overrides,
            "scale": dataclasses.asdict(scale),
            "seed": seed,
        }
        keys.add(cache_key(payload))
    assert len(keys) == 4


def test_corrupt_cache_entry_treated_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    run_batch(get_scenario("Mixed"), TINY, seeds=(0,), cache=cache)
    for path in tmp_path.glob("*/*.json"):
        path.write_text("{not json")
    again = run_batch(get_scenario("Mixed"), TINY, seeds=(0,), cache=cache)
    assert cache.misses == 2  # initial + corrupt reload
    assert again[0].completed_jobs > 0


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    run_batch(get_scenario("Mixed"), TINY, seeds=(0, 1), cache=cache)
    assert cache.clear() == 2
    assert len(cache) == 0


def test_run_profile_does_not_change_the_outcome(capsys):
    """Profiling only observes: the summary must be bit-identical."""
    from repro.experiments import run

    plain = run(get_scenario("Mixed"), TINY, seed=0).summary()
    profiled = run(get_scenario("Mixed"), TINY, seed=0, profile=True).summary()
    assert profiled.to_dict() == plain.to_dict()
    assert "cumulative" in capsys.readouterr().err


def test_code_version_is_stable_and_short():
    assert code_version() == code_version()
    assert len(code_version()) == 16


def test_code_version_ignores_pycache_artifacts():
    """Interpreter droppings under __pycache__ must not shift the hash."""
    import repro
    from repro.experiments import engine

    package_root = Path(repro.__file__).resolve().parent
    engine._code_version_cache = None
    baseline = code_version()

    junk_dir = package_root / "experiments" / "__pycache__"
    junk_dir.mkdir(exist_ok=True)
    junk = junk_dir / "zz_code_version_probe.py"
    junk.write_text("GARBAGE = object()\n")
    try:
        engine._code_version_cache = None
        assert code_version() == baseline
    finally:
        junk.unlink()
        engine._code_version_cache = None


# ----------------------------------------------------------------------
# RunSummary round-trips
# ----------------------------------------------------------------------
def test_summary_json_round_trip(tmp_path, mixed_batch):
    summary = mixed_batch[0]
    rebuilt = RunSummary.from_dict(
        json.loads(json.dumps(summary.to_dict()))
    )
    assert rebuilt == summary
    path = tmp_path / "summary.json"
    summary.save(path)
    assert RunSummary.load(path) == summary


def test_summary_is_validated_and_clean(mixed_batch):
    assert mixed_batch[0].violations == []
    assert validate_run(mixed_batch[0]) == []


def test_result_summary_matches_validate_run():
    result = run(get_scenario("Mixed"), TINY, seed=0)
    assert result.summary().violations == validate_run(result)


# ----------------------------------------------------------------------
# Removed entry points raise with a migration hint
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "call",
    [
        lambda: __import__("repro.experiments", fromlist=["run_scenario"])
        .run_scenario(get_scenario("Mixed"), TINY, seed=0),
        lambda: __import__("repro.experiments", fromlist=["x"])
        .run_scenario_batch(get_scenario("Mixed"), TINY, seeds=(0,)),
        lambda: __import__("repro.baselines", fromlist=["x"])
        .run_baseline("random", TINY, seed=0),
        lambda: __import__("repro.experiments", fromlist=["x"])
        .run_crash_experiment(False, TINY, seed=0),
        lambda: __import__("repro.experiments", fromlist=["x"])
        .run_churn_experiment(TINY, 0, ChurnPlan()),
    ],
    ids=[
        "run_scenario",
        "run_scenario_batch",
        "run_baseline",
        "run_crash_experiment",
        "run_churn_experiment",
    ],
)
def test_removed_wrappers_raise(call):
    with pytest.raises(DeprecationWarning, match="use repro.experiments"):
        call()


# ----------------------------------------------------------------------
# Overlay cache bound (the old unbounded module-level dict)
# ----------------------------------------------------------------------
def test_overlay_cache_is_bounded():
    from repro.experiments.runner import (
        _OVERLAY_CACHE,
        _OVERLAY_CACHE_SIZE,
        _converged_overlay,
    )

    for seed in range(_OVERLAY_CACHE_SIZE + 4):
        _converged_overlay(8, seed)
    assert len(_OVERLAY_CACHE) <= _OVERLAY_CACHE_SIZE
    # Most-recently-used entries survive the eviction.
    assert (8, _OVERLAY_CACHE_SIZE + 3) in _OVERLAY_CACHE


# ----------------------------------------------------------------------
# Tracing + telemetry + progress through the engine
# ----------------------------------------------------------------------
def test_trace_config_joins_the_cache_key(tmp_path):
    from repro.experiments import TraceConfig

    cache = ResultCache(tmp_path)
    run_batch(get_scenario("Mixed"), TINY, seeds=(0,), cache=cache)
    run_batch(
        get_scenario("Mixed"),
        TINY,
        seeds=(0,),
        cache=cache,
        trace=TraceConfig(sink="memory"),
    )
    # The traced run must not be served from the untraced entry.
    assert cache.hits == 0
    assert cache.misses == 2


def test_untraced_payload_matches_pre_trace_cache_key():
    base = get_scenario("Mixed")
    payload = {
        "kind": "scenario",
        "scenario": base.to_dict(),
        "config_overrides": None,
        "scale": dataclasses.asdict(TINY),
        "seed": 0,
    }
    untouched = cache_key(payload)
    from repro.experiments.engine import _attach_trace

    _attach_trace(payload, None, seed=0)
    assert "trace" not in payload
    assert cache_key(payload) == untouched


def test_batch_telemetry_lands_in_summaries(tmp_path):
    from repro.experiments import TraceConfig

    summaries = run_batch(
        get_scenario("Mixed"),
        TINY,
        seeds=(0,),
        cache=False,
        trace=TraceConfig(level="off", sink="memory"),
    )
    telemetry = summaries[0].telemetry
    assert telemetry["jobs.completed"] > 0
    assert "net.lost" in telemetry
    # And it survives the summary JSON round trip.
    restored = RunSummary.from_dict(
        json.loads(json.dumps(summaries[0].to_dict()))
    )
    assert restored.telemetry == telemetry


def test_untraced_summary_omits_telemetry(mixed_batch):
    payload = mixed_batch[0].to_dict()
    assert "telemetry" not in payload
    assert mixed_batch[0].telemetry == {}


def test_trace_rejected_for_baseline_runs():
    from repro.experiments import TraceConfig

    with pytest.raises(ConfigurationError):
        run("centralized", TINY, seed=0, trace=TraceConfig(sink="memory"))


def test_trace_rejects_non_config():
    with pytest.raises(ConfigurationError):
        run("Mixed", TINY, seed=0, trace={"level": "protocol"})


def test_multi_seed_trace_files_use_the_seed_placeholder(tmp_path):
    from repro.experiments import TraceConfig
    from repro.obs import load_trace

    run_batch(
        get_scenario("Mixed"),
        TINY,
        seeds=(0, 1),
        cache=False,
        trace=TraceConfig(path=str(tmp_path / "trace-{seed}.jsonl")),
    )
    for seed in (0, 1):
        events = load_trace(tmp_path / f"trace-{seed}.jsonl")
        assert events, f"seed {seed} wrote no events"


def test_progress_callback_sees_every_completion():
    calls = []
    run_batch(
        get_scenario("Mixed"),
        TINY,
        seeds=(0, 1, 2),
        cache=False,
        progress=lambda done, total: calls.append((done, total)),
    )
    assert calls == [(1, 3), (2, 3), (3, 3)]


def test_parallel_progress_reports_and_stays_deterministic():
    calls = []
    parallel = run_batch(
        get_scenario("Mixed"),
        TINY,
        seeds=(0, 1, 2),
        cache=False,
        parallel=2,
        progress=lambda done, total: calls.append((done, total)),
    )
    serial = run_batch(
        get_scenario("Mixed"), TINY, seeds=(0, 1, 2), cache=False
    )
    assert calls == [(1, 3), (2, 3), (3, 3)]
    assert [s.to_dict() for s in parallel] == [s.to_dict() for s in serial]


def test_run_profile_out_saves_loadable_stats(tmp_path):
    import pstats

    out = tmp_path / "run.pstats"
    result = run("Mixed", TINY, seed=0, profile_out=str(out))
    assert result.metrics.completed_jobs > 0
    stats = pstats.Stats(str(out))
    assert stats.total_calls > 0
