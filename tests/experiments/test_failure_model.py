"""Tests for the composed FailureModel (crash-stop / crash-restart /
fail-slow) and its chaos suite.

The 10-seed chaos suite is the PR's acceptance bar: a mixed FailureModel
*plus* a network FaultPlan, with the invariant checker on, must hold job
conservation and no-double-execution across incarnations on every seed —
and the adoption-off arm must demonstrably surface the orphan-job leak
the adoption mechanism closes.
"""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    FailureModel,
    FaultPlan,
    RunOptions,
    ScenarioScale,
    run,
    run_batch,
)
from repro.experiments.failures import (
    CrashPlan,
    _run_crash_experiment,
    _run_failure_experiment,
)

TINY = ScenarioScale.tiny()
CHAOS_SEEDS = list(range(10))


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_validation_rejects_empty_and_overfull_models():
    with pytest.raises(ConfigurationError):
        FailureModel()  # every fraction zero: does nothing
    with pytest.raises(ConfigurationError):
        FailureModel(crash_fraction=0.5, restart_fraction=0.5)
    with pytest.raises(ConfigurationError):
        FailureModel(crash_fraction=-0.1)
    with pytest.raises(ConfigurationError):
        FailureModel(restart_fraction=0.1, restart_downtime=0.0)
    with pytest.raises(ConfigurationError):
        FailureModel(slow_fraction=0.1, slow_factor=0.5)
    with pytest.raises(ConfigurationError):
        FailureModel(crash_fraction=0.1, crash_start=-1.0)


def test_from_crash_plan_round_trip():
    plan = CrashPlan(fraction=0.2, start=1000.0, spread=500.0)
    model = FailureModel.from_crash_plan(plan)
    assert model.crash_fraction == 0.2
    assert model.crash_start == 1000.0
    assert model.crash_spread == 500.0
    assert model.restart_fraction == 0.0
    assert model.slow_fraction == 0.0


def test_chaos_mix_is_valid_and_scaled():
    model = FailureModel.chaos(TINY.duration)
    assert model.crash_fraction > 0
    assert model.restart_fraction > 0
    assert model.slow_fraction > 0
    assert model.crash_start == TINY.duration * 0.25


# ----------------------------------------------------------------------
# Legacy equivalence: CrashPlan ≡ crash-only FailureModel
# ----------------------------------------------------------------------
def test_crash_only_model_reproduces_the_crash_plan_path():
    # The generalized path must draw its crash-stop victims exactly as
    # the legacy CrashPlan path did: with every extension disabled, the
    # two specs simulate the same run (modulo the scenario label and the
    # invariant sweep the legacy path never ran).
    plan = CrashPlan(fraction=0.25, start=3600.0)
    legacy = _run_crash_experiment(True, TINY, seed=3, plan=plan)
    modeled = run(
        FailureModel.from_crash_plan(plan),
        TINY,
        seed=3,
        options=RunOptions(
            adoption=False, reliability=False, deadline_slack=0.0
        ),
    )
    left = legacy.summary().to_dict()
    right = modeled.summary().to_dict()
    assert left.pop("name") == "iMixed+crash+failsafe"
    assert right.pop("name") == "iMixed+failures+failsafe"
    left.pop("violations")
    right.pop("violations")
    assert left == right


# ----------------------------------------------------------------------
# Mechanism engagement
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mixed_run():
    return run(
        FailureModel.chaos(TINY.duration),
        TINY,
        seed=0,
        options=RunOptions(fault_plan=FaultPlan.chaos(TINY.duration)),
    )


def test_restarts_and_incarnations_happen(mixed_run):
    metrics = mixed_run.metrics
    assert metrics.node_restarts > 0
    # Node count dips during outages but recovers the bouncing nodes.
    final = mixed_run.node_count_series[-1][1]
    crashed_for_good = max(1, round(0.10 * TINY.nodes))
    assert final == TINY.nodes - crashed_for_good


def test_scenario_name_is_labelled(mixed_run):
    assert mixed_run.scenario.name == "iMixed+failures+failsafe"


def test_chaos_suite_holds_invariants_on_every_seed():
    model = FailureModel.chaos(TINY.duration)
    plan = FaultPlan.chaos(TINY.duration)
    for seed in CHAOS_SEEDS:
        result = run(model, TINY, seed=seed, options=RunOptions(fault_plan=plan))
        assert result.extra_violations == [], (
            f"seed {seed}: {result.extra_violations}"
        )
        assert result.metrics.duplicate_executions == 0, f"seed {seed}"


def test_adoption_off_arm_surfaces_the_orphan_leak():
    # With adoption disabled the orphan detector still counts jobs whose
    # initiator went silent — the leak the adoption mechanism closes.
    model = FailureModel.chaos(TINY.duration)
    plan = FaultPlan.chaos(TINY.duration)
    orphaned = adopted = 0
    for seed in CHAOS_SEEDS[:5]:
        result = run(
            model,
            TINY,
            seed=seed,
            options=RunOptions(fault_plan=plan, adoption=False),
        )
        orphaned += result.metrics.orphaned_jobs
        adopted += result.metrics.adopted_jobs
    assert orphaned > 0
    assert adopted == 0


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
def test_run_batch_round_trips_the_model(tmp_path):
    model = FailureModel(restart_fraction=0.2, restart_start=3600.0)
    direct = _run_failure_experiment(model, TINY, 1).summary().to_dict()
    batch = run_batch(
        model, TINY, seeds=(1,), cache=tmp_path / "cache"
    )
    assert batch[0].to_dict() == direct
    assert batch.errors == {}
    # Second call is served from the cache, bit-identically.
    again = run_batch(model, TINY, seeds=(1,), cache=tmp_path / "cache")
    assert again[0].to_dict() == direct


def test_unknown_option_is_rejected():
    with pytest.raises(ConfigurationError):
        run(FailureModel(crash_fraction=0.1), TINY, seed=0, failsafes=True)


def test_fault_plan_option_must_be_a_fault_plan():
    with pytest.raises(ConfigurationError):
        run(
            FailureModel(crash_fraction=0.1),
            TINY,
            seed=0,
            options=RunOptions(fault_plan={}),
        )


def test_model_is_cache_key_aware(tmp_path):
    from repro.experiments.engine import _spec_payload, cache_key

    a = _spec_payload(FailureModel(crash_fraction=0.1), {})
    b = _spec_payload(FailureModel(crash_fraction=0.2), {})
    a["scale"] = b["scale"] = dataclasses.asdict(TINY)
    a["seed"] = b["seed"] = 0
    assert cache_key(a) != cache_key(b)
