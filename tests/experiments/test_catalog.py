"""Table II: the catalog must match the paper's 26 scenarios exactly."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import SCENARIOS, get_scenario, with_rescheduling
from repro.types import HOUR, MINUTE

EXPECTED_NAMES = {
    "FCFS", "SJF", "Mixed", "Deadline", "LowLoad", "HighLoad", "DeadlineH",
    "Expanding", "Precise", "Accuracy25", "AccuracyBad",
    "iFCFS", "iSJF", "iMixed", "iDeadline", "iLowLoad", "iHighLoad",
    "iDeadlineH", "iExpanding", "iPrecise", "iAccuracy25", "iAccuracyBad",
    "iInform1", "iInform4", "iInform15m", "iInform30m",
}


def test_catalog_has_exactly_the_26_scenarios():
    assert set(SCENARIOS) == EXPECTED_NAMES
    assert len(SCENARIOS) == 26


def test_i_prefix_means_rescheduling():
    for name, scenario in SCENARIOS.items():
        assert scenario.rescheduling == name.startswith("i"), name


def test_policy_assignments():
    assert get_scenario("FCFS").policies == ("FCFS",)
    assert get_scenario("SJF").policies == ("SJF",)
    assert get_scenario("Mixed").policies == ("FCFS", "SJF")
    assert get_scenario("Deadline").policies == ("EDF",)


def test_load_scenarios_change_submission_interval():
    assert get_scenario("Mixed").submission_interval == 10.0
    assert get_scenario("LowLoad").submission_interval == 20.0
    assert get_scenario("HighLoad").submission_interval == 5.0


def test_deadline_scenarios_slack():
    assert get_scenario("Deadline").deadline_slack_mean == 7.5 * HOUR
    assert get_scenario("DeadlineH").deadline_slack_mean == 2.5 * HOUR
    assert get_scenario("Mixed").deadline_slack_mean is None
    assert get_scenario("iDeadline").is_deadline


def test_accuracy_scenarios():
    assert get_scenario("Precise").epsilon == 0.0
    assert get_scenario("Accuracy25").epsilon == 0.25
    bad = get_scenario("AccuracyBad")
    assert bad.epsilon == 0.1 and bad.optimistic_only
    assert get_scenario("Mixed").epsilon == 0.1


def test_inform_sensitivity_scenarios():
    assert get_scenario("iInform1").inform_count == 1
    assert get_scenario("iInform4").inform_count == 4
    assert get_scenario("iMixed").inform_count == 2
    assert get_scenario("iInform15m").improvement_threshold == 15 * MINUTE
    assert get_scenario("iInform30m").improvement_threshold == 30 * MINUTE
    assert get_scenario("iMixed").improvement_threshold == 3 * MINUTE


def test_expanding_scenarios():
    assert get_scenario("Expanding").expanding
    assert get_scenario("iExpanding").expanding
    assert not get_scenario("Mixed").expanding


def test_unknown_scenario_raises():
    with pytest.raises(ConfigurationError):
        get_scenario("NoSuchScenario")


def test_with_rescheduling_maps_to_twin():
    assert with_rescheduling("Mixed").name == "iMixed"
    assert with_rescheduling("iMixed").name == "iMixed"


def test_scenario_validation():
    from repro.experiments import Scenario

    with pytest.raises(ConfigurationError):
        Scenario(name="x", description="", policies=())
    with pytest.raises(ConfigurationError):
        Scenario(name="x", description="", policies=("FCFS",), submission_interval=0)
    with pytest.raises(ConfigurationError):
        Scenario(name="x", description="", policies=("FCFS",), epsilon=-1)
