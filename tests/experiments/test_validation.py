"""Tests for the run-validation audit — and audits of real runs."""

import pytest

from repro.experiments import (
    RunOptions,
    ScenarioScale,
    get_scenario,
    run,
)
from repro.experiments.churn import ChurnPlan
from repro.experiments.failures import CrashPlan
from repro.experiments.validation import validate_run

TINY = ScenarioScale.tiny()


@pytest.mark.parametrize(
    "name", ["Mixed", "iMixed", "iDeadlineH", "iExpanding"]
)
def test_scenario_runs_validate_clean(name):
    result = run(get_scenario(name), TINY, seed=4)
    assert validate_run(result) == []


def test_crash_runs_validate_clean():
    for failsafe in (False, True):
        result = run(
            CrashPlan(), TINY, seed=4, options=RunOptions(failsafe=failsafe)
        )
        assert validate_run(result) == []


def test_churn_runs_validate_clean():
    plan = ChurnPlan(interval=180.0, start=1800.0, end=9000.0, crash_weight=0.5)
    result = run(plan, TINY, seed=4, options=RunOptions(failsafe=True))
    assert validate_run(result) == []


def test_validation_detects_corruption():
    result = run(get_scenario("Mixed"), TINY, seed=4)
    record = next(r for r in result.metrics.records.values() if r.completed)
    # Corrupt the record: execution "started" before submission.
    record.start_time = record.submit_time - 100.0
    violations = validate_run(result)
    assert any("started before submission" in v for v in violations)


def test_validation_detects_overlap():
    result = run(get_scenario("Mixed"), TINY, seed=4)
    completed = [r for r in result.metrics.records.values() if r.completed]
    a, b = completed[0], completed[1]
    # Force both executions onto one node at overlapping times.
    b.start_node = a.start_node
    b.start_time = a.start_time
    b.finish_time = a.finish_time
    b.assignments[-1] = (b.assignments[-1][0], a.start_node)
    violations = validate_run(result)
    assert any("overlapping executions" in v for v in violations)


def test_validation_detects_placement_mismatch():
    result = run(get_scenario("Mixed"), TINY, seed=4)
    record = next(r for r in result.metrics.records.values() if r.completed)
    record.start_node = 9999
    violations = validate_run(result)
    assert any("ran on 9999" in v for v in violations)
