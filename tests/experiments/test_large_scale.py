"""Smoke tests for the large-grid build path (> 2000 nodes).

Grids above ``_LARGE_GRID_NODES`` assemble differently: a chordal-ring
overlay instead of the O(nodes^2) BLATANT convergence, trimmed per-agent
dedup caches, a bounded REQUEST flood, slab-backed aggregate state behind
the samplers, and memory-bounded time series.  The fast tier exercises
all of that with a scaled-down job count on a just-above-threshold grid;
the full 10k-node ``large`` preset run is opt-in via ``ARIA_RUN_LARGE=1``
(it takes minutes — the bench-scale CI job runs it via
``scripts/bench_hotpath.py``).
"""

import os

import pytest

from repro.experiments import ScenarioScale, run
from repro.experiments.runner import (
    _LARGE_GRID_NODES,
    _LARGE_GRID_REQUEST_HOPS,
    _LARGE_GRID_SEEN_CAPACITY,
    build_grid,
)
from repro.experiments.catalog import get_scenario
from repro.sim.sampler import DEFAULT_MAX_SAMPLES


def _smoke_scale(jobs: int = 60) -> ScenarioScale:
    return ScenarioScale(
        nodes=_LARGE_GRID_NODES + 200, jobs=jobs, sample_interval=600.0
    )


def _scenario(name: str):
    return get_scenario(name)


def test_large_grid_build_adapts_config_and_overlay():
    setup = build_grid(_scenario("iMixed"), _smoke_scale(), seed=0)
    config = setup.agents[0].config
    assert config.seen_cache_capacity == _LARGE_GRID_SEEN_CAPACITY
    assert config.request_flood.max_hops == _LARGE_GRID_REQUEST_HOPS
    # Chordal ring: every node present, average degree ~4 like BLATANT.
    assert len(setup.graph) == setup.scale.nodes
    assert 3.5 <= setup.graph.average_degree() <= 4.5
    # Slab state mirrors the full membership.
    assert setup.grid_state is not None
    assert setup.grid_state.live_count == setup.scale.nodes
    assert setup.grid_state.idle_live_count == setup.scale.nodes


def test_large_grid_overrides_still_win():
    setup = build_grid(
        _scenario("iMixed"),
        _smoke_scale(),
        seed=0,
        config_overrides={"seen_cache_capacity": 99},
    )
    assert setup.agents[0].config.seen_cache_capacity == 99


def test_large_grid_smoke_run_is_clean_and_bounded():
    result = run("iMixed", _smoke_scale(), seed=0)
    summary = result.summary()
    assert summary.violations == []
    assert result.metrics.completed_jobs > 0
    # Sampled series stay bounded no matter how long or fine the run.
    for series in (
        result.idle_series,
        result.completed_series,
        result.node_count_series,
    ):
        assert len(series) <= DEFAULT_MAX_SAMPLES
    # The completion-time series decimates instead of growing per event.
    completion = result.metrics.completion_series
    assert completion.count == result.metrics.completed_jobs
    assert len(completion.points) <= completion.max_points


@pytest.mark.skipif(
    not os.environ.get("ARIA_RUN_LARGE"),
    reason="full 10k-node run takes minutes; set ARIA_RUN_LARGE=1",
)
def test_large_preset_full_run():
    result = run("iMixed", ScenarioScale.large(), seed=0)
    summary = result.summary()
    assert summary.violations == []
    assert result.metrics.completed_jobs > 19_000
    assert len(result.idle_series) <= DEFAULT_MAX_SAMPLES
