"""Tests for parameter sweeps and scenario serialization."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import Scenario, ScenarioScale, get_scenario
from repro.experiments.sweep import sweep_config_field, sweep_scenario_field

TINY = ScenarioScale.tiny()


def test_scenario_field_sweep_produces_one_point_per_value():
    points = sweep_scenario_field(
        "iMixed", "inform_count", [1, 4], TINY, seeds=(1,)
    )
    assert [p.value for p in points] == [1, 4]
    for point in points:
        assert point.field == "inform_count"
        assert point.summary.completed_jobs > 0
    # More candidates per round => at least as much INFORM traffic.
    assert (
        points[0].summary.traffic_bytes["Inform"]
        <= points[1].summary.traffic_bytes["Inform"] * 1.05
    )


def test_config_field_sweep():
    points = sweep_config_field(
        "iMixed", "inform_interval", [120.0, 1200.0], TINY, seeds=(1,)
    )
    # A 10x slower INFORM cadence produces less INFORM traffic.
    assert (
        points[1].summary.traffic_bytes.get("Inform", 0)
        < points[0].summary.traffic_bytes.get("Inform", 0)
    )


def test_sweep_rejects_unknown_fields():
    with pytest.raises(ConfigurationError):
        sweep_scenario_field("iMixed", "warp_speed", [1], TINY)
    with pytest.raises(ConfigurationError):
        sweep_config_field("iMixed", "warp_speed", [1], TINY)


def test_scenario_roundtrips_through_dict():
    scenario = get_scenario("iDeadlineH")
    clone = Scenario.from_dict(scenario.to_dict())
    assert clone == scenario


def test_scenario_from_dict_rejects_unknown_keys():
    payload = get_scenario("Mixed").to_dict()
    payload["warp"] = 9
    with pytest.raises(ConfigurationError):
        Scenario.from_dict(payload)


def test_custom_scenario_from_dict_runs(tmp_path):
    import json

    from repro.cli import main

    payload = {
        "name": "CustomTest",
        "description": "custom scenario for the CLI test",
        "policies": ["FCFS", "SJF", "LJF"],
        "rescheduling": True,
        "submission_interval": 15.0,
    }
    path = tmp_path / "custom.json"
    path.write_text(json.dumps(payload))
    assert main(["run-file", str(path), "--scale", "tiny"]) == 0


def test_cli_sweep(capsys):
    from repro.cli import main

    assert (
        main(
            [
                "sweep", "iMixed", "config", "accept_wait", "2.0", "10.0",
                "--scale", "tiny",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "accept_wait" in out and "completion" in out
