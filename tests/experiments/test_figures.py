"""Figure extraction: every paper figure renders and has the right shape.

These run at tiny scale with one seed; the quantitative shape assertions
(who wins) live in tests/test_paper_claims.py at a slightly larger scale.
"""

import pytest

from repro.experiments import ScenarioScale
from repro.experiments import figures as F

TINY = ScenarioScale.tiny()
SEEDS = (0,)


def test_fig1_series_for_all_six_scenarios():
    fig = F.fig1_completed_jobs(TINY, SEEDS)
    assert set(fig.series) == set(F.POLICY_SET)
    for series in fig.series.values():
        values = [v for _, v in series]
        assert values[-1] >= 0.9 * TINY.jobs
    assert "Figure 1" in fig.render()


def test_fig2_rows_and_render():
    fig = F.fig2_completion_time(TINY, SEEDS)
    assert [row[0] for row in fig.rows] == list(F.POLICY_SET)
    out = fig.render()
    assert "waiting" in out and "completion" in out


def test_fig3_idle_series():
    fig = F.fig3_idle_nodes(TINY, SEEDS)
    assert set(fig.series) == set(F.POLICY_SET)
    for series in fig.series.values():
        assert all(0 <= v <= TINY.nodes for _, v in series)


def test_fig4_deadline_rows():
    fig = F.fig4_deadlines(TINY, SEEDS)
    assert [row[0] for row in fig.rows] == list(F.DEADLINE_SET)
    assert "missed" in fig.render()


def test_fig5_expanding_includes_node_count():
    fig = F.fig5_expanding(TINY, SEEDS)
    assert "Expanding" in fig.series and "iExpanding" in fig.series
    assert "connected nodes" in fig.series
    counts = [v for _, v in fig.series["connected nodes"]]
    assert counts[-1] > counts[0]


def test_fig6_windows_differ_by_load():
    fig = F.fig6_load_idle(TINY, SEEDS)
    low = fig.windows["LowLoad"]
    high = fig.windows["HighLoad"]
    assert low[1] > high[1]  # LowLoad submits over a longer window


def test_fig7_and_fig8_and_fig9_render():
    for fig in (
        F.fig7_load_completion(TINY, SEEDS),
        F.fig8_resched_policies(TINY, SEEDS),
        F.fig9_ert_accuracy(TINY, SEEDS),
    ):
        out = fig.render()
        assert "completion" in out


def test_fig10_traffic_shape():
    fig = F.fig10_traffic(TINY, SEEDS)
    by_name = {row[0]: row for row in fig.rows}
    # REQUEST traffic is roughly constant across non-expanding scenarios.
    requests = [
        float(by_name[n][1])
        for n in ("Mixed", "iMixed", "HighLoad", "iHighLoad")
    ]
    assert max(requests) <= 1.5 * min(requests) + 0.01
    # Rescheduling scenarios generate INFORM traffic; plain ones none.
    assert float(by_name["Mixed"][3]) == 0.0
    assert float(by_name["iMixed"][3]) > 0.0


def test_summary_cache_reuses_runs():
    before = len(F._SUMMARY_CACHE)
    F.fig1_completed_jobs(TINY, SEEDS)
    mid = len(F._SUMMARY_CACHE)
    F.fig3_idle_nodes(TINY, SEEDS)  # same scenario set: no new entries
    assert len(F._SUMMARY_CACHE) == mid
    assert mid >= before
