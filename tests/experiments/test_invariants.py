"""Unit tests for the post-run protocol invariant checker."""

from repro.experiments import (
    ScenarioScale,
    build_grid,
    check_invariants,
    get_scenario,
)
from repro.metrics import GridMetrics

from ..helpers import make_job

TINY = ScenarioScale.tiny()


# ----------------------------------------------------------------------
# Fakes: the checker only touches metrics, scale, and the agent surface.
# ----------------------------------------------------------------------
class FakeScheduler:
    def __init__(self, entries=()):
        self._entries = list(entries)

    def queued(self):
        return self._entries


class FakeEntry:
    def __init__(self, job):
        self.job = job


class FakeNode:
    def __init__(self, running=None, queued=()):
        self.running = FakeEntry(running) if running is not None else None
        self.scheduler = FakeScheduler([FakeEntry(j) for j in queued])


class FakeAgent:
    def __init__(self, node_id, running=None, queued=(), pending=(),
                 tracked=(), failed=False, departed=False):
        self.node_id = node_id
        self.node = FakeNode(running, queued)
        self._pending = set(pending)
        self._tracked = {job_id: None for job_id in tracked}
        self.failed = failed
        self.departed = departed


class FakeScale:
    def __init__(self, duration=10_000.0, jobs=1):
        self.duration = duration
        self.jobs = jobs


class FakeSetup:
    def __init__(self, agents=(), duration=10_000.0, jobs=1):
        self.metrics = GridMetrics()
        self.agents = list(agents)
        self.scale = FakeScale(duration, jobs)


def submit_and_finish(setup, job, node=0, at=100.0):
    setup.metrics.job_submitted(job, initiator=node, time=at)
    setup.metrics.job_assigned(job.job_id, node, at, reschedule=False)
    setup.metrics.job_started(job.job_id, node, at + 1)
    setup.metrics.job_finished(job.job_id, node, at + 2)


# ----------------------------------------------------------------------
# Each invariant, in isolation
# ----------------------------------------------------------------------
def test_completed_job_is_clean():
    setup = FakeSetup([FakeAgent(0)])
    submit_and_finish(setup, make_job(1))
    assert check_invariants(setup, expected_jobs=1) == []


def test_job_conservation_flags_missing_records():
    setup = FakeSetup([FakeAgent(0)])
    submit_and_finish(setup, make_job(1))
    violations = check_invariants(setup, expected_jobs=2)
    assert any("job conservation" in v for v in violations)


def test_stranded_job_is_flagged_after_settling():
    setup = FakeSetup([FakeAgent(0)], duration=10_000.0)
    setup.metrics.job_submitted(make_job(1), initiator=0, time=100.0)
    violations = check_invariants(setup, expected_jobs=1, settle=1800.0)
    assert any("stranded" in v for v in violations)


def test_recent_activity_is_not_stranded():
    setup = FakeSetup([FakeAgent(0)], duration=10_000.0)
    setup.metrics.job_submitted(make_job(1), initiator=0, time=9500.0)
    assert check_invariants(setup, expected_jobs=1, settle=1800.0) == []


def test_held_job_is_in_flight_not_stranded():
    job = make_job(1)
    setup = FakeSetup([FakeAgent(0, running=job)], duration=10_000.0)
    setup.metrics.job_submitted(job, initiator=0, time=100.0)
    assert check_invariants(setup, expected_jobs=1) == []


def test_pending_discovery_is_in_flight_not_stranded():
    job = make_job(1)
    setup = FakeSetup([FakeAgent(0, pending=(1,))], duration=10_000.0)
    setup.metrics.job_submitted(job, initiator=0, time=100.0)
    assert check_invariants(setup, expected_jobs=1) == []


def test_double_holding_is_flagged():
    job = make_job(1)
    setup = FakeSetup(
        [FakeAgent(0, running=job), FakeAgent(1, queued=(job,))],
        duration=10_000.0,
    )
    submit_and_finish(setup, make_job(2))
    setup.metrics.job_submitted(job, initiator=0, time=9900.0)
    violations = check_invariants(setup, expected_jobs=2)
    assert any("held by 2 live nodes" in v for v in violations)


def test_dead_nodes_do_not_count_as_holders():
    job = make_job(1)
    setup = FakeSetup(
        [
            FakeAgent(0, running=job),
            FakeAgent(1, queued=(job,), failed=True),
            FakeAgent(2, queued=(job,), departed=True),
        ],
        duration=10_000.0,
    )
    setup.metrics.job_submitted(job, initiator=0, time=100.0)
    assert check_invariants(setup, expected_jobs=1) == []


def test_duplicate_execution_is_flagged():
    setup = FakeSetup([FakeAgent(0)])
    job = make_job(1)
    submit_and_finish(setup, job)
    setup.metrics.job_finished(job.job_id, 1, 200.0)  # second completion
    violations = check_invariants(setup, expected_jobs=1)
    assert any("duplicate execution" in v for v in violations)


def test_crash_loss_flagged_only_in_crash_free_mode():
    setup = FakeSetup([FakeAgent(0)])
    job = make_job(1)
    submit_and_finish(setup, job)
    setup.metrics.records[job.job_id].lost_count = 1
    assert any(
        "crash-lost" in v
        for v in check_invariants(setup, expected_jobs=1)
    )
    assert check_invariants(setup, expected_jobs=1, allow_lost=True) == []


def test_stale_tracking_is_flagged():
    setup = FakeSetup([FakeAgent(0, tracked=(1,))], duration=10_000.0)
    submit_and_finish(setup, make_job(1), at=100.0)
    violations = check_invariants(setup, expected_jobs=1, settle=1800.0)
    assert any("still tracked" in v for v in violations)


def test_fresh_tracking_of_finished_job_is_tolerated():
    setup = FakeSetup([FakeAgent(0, tracked=(1,))], duration=10_000.0)
    submit_and_finish(setup, make_job(1), at=9500.0)
    assert check_invariants(setup, expected_jobs=1, settle=1800.0) == []


# ----------------------------------------------------------------------
# Against a real (fault-free) run
# ----------------------------------------------------------------------
def test_clean_scenario_run_satisfies_all_invariants():
    setup = build_grid(get_scenario("Mixed"), TINY, seed=0)
    setup.run()
    assert check_invariants(setup, expected_jobs=TINY.jobs) == []
