"""Integration tests: full scenario runs at tiny scale."""

import pytest

from repro.experiments import ScenarioScale, get_scenario, run

TINY = ScenarioScale.tiny()


@pytest.fixture(scope="module")
def mixed_run():
    return run(get_scenario("Mixed"), TINY, seed=1)


@pytest.fixture(scope="module")
def imixed_run():
    return run(get_scenario("iMixed"), TINY, seed=1)


def test_all_schedulable_jobs_complete(mixed_run):
    m = mixed_run.metrics
    assert m.completed_jobs + m.unschedulable_count() == TINY.jobs
    assert m.completed_jobs >= 0.9 * TINY.jobs


def test_submission_window_matches_scaled_schedule(mixed_run):
    start, end = mixed_run.submission_window
    assert start == 1200.0  # 20 minutes
    interval = 10.0 * TINY.interval_factor
    assert end == pytest.approx(start + (TINY.jobs - 1) * interval)


def test_series_are_sampled_over_full_duration(mixed_run):
    times = [t for t, _ in mixed_run.idle_series]
    assert times[0] == 0.0
    assert times[-1] >= TINY.duration - TINY.sample_interval
    assert len(mixed_run.idle_series) == len(mixed_run.completed_series)


def test_completed_series_is_monotonic(mixed_run):
    values = [v for _, v in mixed_run.completed_series]
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert values[-1] == mixed_run.metrics.completed_jobs


def test_idle_series_within_node_count(mixed_run):
    assert all(0 <= v <= TINY.nodes for _, v in mixed_run.idle_series)
    # Everything drains by the end of the run: all nodes idle again.
    assert mixed_run.idle_series[-1][1] == TINY.nodes


def test_no_rescheduling_without_i(mixed_run):
    assert mixed_run.metrics.reschedules == 0
    assert "Inform" not in mixed_run.traffic.bytes_by_type


def test_rescheduling_produces_inform_traffic(imixed_run):
    assert imixed_run.metrics.reschedules > 0
    assert imixed_run.traffic.bytes_by_type["Inform"] > 0


def test_rescheduling_does_not_lose_jobs(imixed_run):
    m = imixed_run.metrics
    assert m.completed_jobs + m.unschedulable_count() == TINY.jobs


def test_same_seed_reproduces_exactly():
    a = run(get_scenario("Mixed"), TINY, seed=5)
    b = run(get_scenario("Mixed"), TINY, seed=5)
    assert a.metrics.completed_jobs == b.metrics.completed_jobs
    assert a.completed_series == b.completed_series
    assert a.traffic.bytes_by_type == b.traffic.bytes_by_type
    assert a.executed_events == b.executed_events


def test_different_seeds_differ():
    a = run(get_scenario("Mixed"), TINY, seed=5)
    b = run(get_scenario("Mixed"), TINY, seed=6)
    assert a.completed_series != b.completed_series


def test_expanding_grid_grows():
    result = run(get_scenario("iExpanding"), TINY, seed=2)
    assert result.final_node_count == TINY.nodes + TINY.expanding_extra_nodes
    counts = [v for _, v in result.node_count_series]
    assert counts[0] == TINY.nodes
    assert counts[-1] == result.final_node_count
    assert all(b >= a for a, b in zip(counts, counts[1:]))


def test_deadline_scenario_produces_deadline_metrics():
    result = run(get_scenario("DeadlineH"), TINY, seed=3)
    m = result.metrics
    assert m.completed_jobs > 0
    records = list(m.records.values())
    assert all(r.job.has_deadline for r in records)
    assert m.average_lateness() is not None


def test_traffic_report_covers_protocol_messages(imixed_run):
    types = set(imixed_run.traffic.bytes_by_type)
    assert {"Request", "Accept", "Assign", "Inform"} <= types


def test_batch_runner():
    runs = [run(get_scenario("Mixed"), TINY, seed=s) for s in (1, 2)]
    assert [r.seed for r in runs] == [1, 2]


def test_network_counters_surface_in_result_and_summary(mixed_run):
    import dataclasses

    lossy = dataclasses.replace(get_scenario("Mixed"), message_loss=0.2)
    result = run(lossy, TINY, seed=1)
    assert result.network["lost"] > 0
    summary = result.summary()
    assert summary.extras["net_lost"] == float(result.network["lost"])
    # A nominal run carries the counters on the result but keeps its
    # summary byte-identical: zero counters never reach the extras.
    assert mixed_run.network["lost"] == 0
    assert not any(
        key.startswith("net_") for key in mixed_run.summary().extras
    )
