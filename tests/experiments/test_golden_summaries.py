"""Bit-identical determinism against committed golden summaries.

The hot-path optimizations (slab event queue, incremental cost caching)
must not change any simulated outcome: the same ``(scenario, scale, seed)``
must produce the exact same :class:`RunSummary` — byte-identical canonical
JSON — as the pre-optimization code that generated the golden files in
``tests/experiments/golden/``.

If one of these tests fails after an intentional semantic change to the
simulation, regenerate the golden files (see the module docstring of
``scripts/bench_hotpath.py`` and ``docs/PERFORMANCE.md``) and call the
change out loudly in the PR — it alters every published number.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import ScenarioScale, run

GOLDEN_DIR = Path(__file__).parent / "golden"

_SCALES = {
    "tiny": ScenarioScale.tiny,
    "small": ScenarioScale.small,
}

#: The frozen (scenario, scale, seed) pairs; one batch/ETTC-heavy run with
#: rescheduling, one deadline/NAL run — together they exercise the kernel,
#: flooding, both cost families and the INFORM path.
PAIRS = [
    ("iMixed", "tiny", 0),
    ("iDeadline", "small", 1),
]


def _canonical(summary_dict) -> str:
    return json.dumps(summary_dict, sort_keys=True, indent=2) + "\n"


@pytest.mark.parametrize("scenario,scale_name,seed", PAIRS)
def test_summary_matches_golden_file(scenario, scale_name, seed):
    golden_path = GOLDEN_DIR / f"{scenario}_{scale_name}_seed{seed}.json"
    golden = golden_path.read_text()
    summary = run(scenario, _SCALES[scale_name](), seed=seed).summary()
    assert _canonical(summary.to_dict()) == golden, (
        f"{scenario}@{scale_name} seed={seed} diverged from the golden "
        f"summary in {golden_path} — a hot-path change altered simulated "
        f"outcomes"
    )


def test_golden_files_are_canonical():
    """The committed files themselves round-trip through canonical dumping."""
    for path in GOLDEN_DIR.glob("*.json"):
        data = json.loads(path.read_text())
        assert _canonical(data) == path.read_text(), path.name
