"""Tests for the chart rendering of figures."""

from repro.experiments import ScenarioScale
from repro.experiments.figures import fig1_completed_jobs

TINY = ScenarioScale.tiny()


def test_render_chart_produces_plot_with_legend():
    fig = fig1_completed_jobs(TINY, seeds=(0,))
    out = fig.render_chart(width=40, height=8)
    assert fig.title in out
    assert "legend:" in out
    for name in fig.series:
        assert name in out


def test_render_chart_until_zooms():
    fig = fig1_completed_jobs(TINY, seeds=(0,))
    full = fig.render_chart()
    zoomed = fig.render_chart(until=TINY.duration * 0.25)
    assert full != zoomed
