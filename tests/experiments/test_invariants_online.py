"""Unit tests for the streaming invariant checker (soak-mode core).

Each test feeds a small synthetic event stream straight into
:class:`~repro.experiments.OnlineInvariantChecker` — no grid, no
transport — and asserts the checker's verdict, its tee-through to the
downstream sink, and that its state stays bounded.
"""

from repro.experiments import OnlineInvariantChecker
from repro.obs import MemorySink


def ev(name, t, **fields):
    """One synthetic trace event in the bus's wire shape."""
    event = {"ev": name, "t": t}
    event.update(fields)
    return event


def feed(checker, *events):
    for event in events:
        checker.append(event)
    return checker


# ----------------------------------------------------------------------
# Tee behaviour
# ----------------------------------------------------------------------
def test_clean_stream_forwards_everything_and_stays_silent():
    sink = MemorySink()
    checker = OnlineInvariantChecker(sink)
    events = [
        ev("job.submitted", 10.0, job=1, node=0),
        ev("job.assigned", 20.0, job=1, node=2, cost=5.0),
        ev("job.finished", 900.0, job=1, node=2),
    ]
    feed(checker, *events)
    assert checker.violations == []
    assert checker.checked == 3
    assert sink.events == events
    checker.close()  # closes the downstream sink without raising


def test_checker_without_sink_checks_and_drops():
    checker = OnlineInvariantChecker()
    feed(checker, ev("job.finished", 1.0, job=1, node=0))
    assert checker.sink is None
    assert checker.checked == 1
    checker.close()


# ----------------------------------------------------------------------
# Double execution
# ----------------------------------------------------------------------
def test_second_finish_of_a_job_is_a_double_execution():
    checker = OnlineInvariantChecker()
    feed(
        checker,
        ev("job.finished", 100.0, job=7, node=1),
        ev("job.finished", 250.0, job=7, node=4),
    )
    assert len(checker.violations) == 1
    assert "double execution" in checker.violations[0]
    assert "job 7" in checker.violations[0]
    # A third sighting of the same job adds nothing new.
    feed(checker, ev("job.finished", 300.0, job=7, node=5))
    assert len(checker.violations) == 1


def test_on_violation_fires_once_per_new_violation():
    seen = []
    checker = OnlineInvariantChecker(on_violation=seen.append)
    feed(
        checker,
        ev("job.finished", 1.0, job=1, node=0),
        ev("job.finished", 2.0, job=1, node=1),
        ev("job.finished", 3.0, job=1, node=2),
        ev("job.finished", 4.0, job=2, node=0),
        ev("job.finished", 5.0, job=2, node=1),
    )
    assert seen == checker.violations
    assert len(seen) == 2


def test_finished_job_memory_is_lru_bounded():
    checker = OnlineInvariantChecker(max_tracked_jobs=4)
    for job in range(10):
        checker.append(ev("job.finished", float(job), job=job, node=0))
    assert len(checker._finished) == 4
    # An evicted job finishing "again" can no longer be flagged — the
    # price of bounded memory — but recent jobs still are.
    feed(checker, ev("job.finished", 50.0, job=9, node=3))
    assert len(checker.violations) == 1


# ----------------------------------------------------------------------
# Stale-incarnation delivery
# ----------------------------------------------------------------------
def test_delivery_to_a_crashed_node_is_flagged():
    checker = OnlineInvariantChecker()
    feed(
        checker,
        ev("node.crashed", 100.0, node=3),
        ev("msg.delivered", 110.0, type="Assign", src=0, dst=3),
    )
    assert len(checker.violations) == 1
    assert "stale-incarnation" in checker.violations[0]


def test_delivery_after_restart_is_clean():
    checker = OnlineInvariantChecker()
    feed(
        checker,
        ev("node.crashed", 100.0, node=3),
        ev("node.restarted", 150.0, node=3, incarnation=1),
        ev("msg.delivered", 160.0, type="Assign", src=0, dst=3),
    )
    assert checker.violations == []


# ----------------------------------------------------------------------
# Orphan-adoption convergence
# ----------------------------------------------------------------------
def test_orphan_adopted_within_grace_is_clean():
    checker = OnlineInvariantChecker(orphan_grace=1000.0)
    feed(
        checker,
        ev("job.orphaned", 100.0, job=5, node=2),
        ev("job.adopted", 600.0, job=5, node=4),
        ev("job.submitted", 5000.0, job=6, node=0),  # time passes
    )
    assert checker.violations == []


def test_orphan_outliving_the_grace_fails_convergence():
    checker = OnlineInvariantChecker(orphan_grace=1000.0)
    feed(
        checker,
        ev("job.orphaned", 100.0, job=5, node=2),
        ev("job.submitted", 2000.0, job=6, node=0),  # watermark advances
    )
    assert len(checker.violations) == 1
    assert "orphan adoption failed to converge" in checker.violations[0]


def test_close_sweeps_orphans_still_pending():
    checker = OnlineInvariantChecker(orphan_grace=1000.0)
    feed(
        checker,
        ev("job.orphaned", 100.0, job=5, node=2),
        ev("job.submitted", 900.0, job=6, node=0),  # inside grace
    )
    assert checker.violations == []
    checker._now = 5000.0  # the run ended much later
    checker.close()
    assert len(checker.violations) == 1


# ----------------------------------------------------------------------
# Tracking quiescence
# ----------------------------------------------------------------------
def test_probe_soon_after_finish_is_clean():
    checker = OnlineInvariantChecker(settle=1800.0)
    feed(
        checker,
        ev("job.finished", 100.0, job=1, node=2),
        ev("probe.sent", 500.0, job=1, node=0, target=2),
    )
    assert checker.violations == []


def test_probe_long_after_finish_is_leaked_tracking_state():
    checker = OnlineInvariantChecker(settle=1800.0)
    feed(
        checker,
        ev("job.finished", 100.0, job=1, node=2),
        ev("probe.sent", 2500.0, job=1, node=0, target=2),
    )
    assert len(checker.violations) == 1
    assert "tracking state leaked" in checker.violations[0]
