"""Tests for the ASCII chart renderers."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.plotting import ascii_bar_chart, ascii_line_chart
from repro.types import HOUR


def test_line_chart_contains_markers_and_axes():
    series = {
        "a": [(i * HOUR, float(i)) for i in range(10)],
        "b": [(i * HOUR, float(10 - i)) for i in range(10)],
    }
    out = ascii_line_chart(series, width=40, height=8)
    assert "*" in out and "o" in out
    assert "legend: * a   o b" in out
    assert "0.0h" in out and "9.0h" in out


def test_line_chart_scales_extremes_to_edges():
    series = {"x": [(0.0, 0.0), (HOUR, 100.0)]}
    out = ascii_line_chart(series, width=20, height=6)
    lines = out.splitlines()
    assert lines[0].lstrip().startswith("100")  # top label
    assert any(line.lstrip().startswith("0 |") for line in lines)


def test_line_chart_until_restricts_domain():
    series = {"x": [(0.0, 1.0), (HOUR, 2.0), (10 * HOUR, 3.0)]}
    out = ascii_line_chart(series, until=2 * HOUR)
    assert "10.0h" not in out
    assert "1.0h" in out


def test_line_chart_flat_series():
    out = ascii_line_chart({"flat": [(0.0, 5.0), (HOUR, 5.0)]})
    assert "flat" in out  # must not divide by zero


def test_line_chart_empty():
    assert ascii_line_chart({}) == "(no data)"
    assert ascii_line_chart({"x": []}) == "(no data)"


def test_line_chart_validation():
    with pytest.raises(ConfigurationError):
        ascii_line_chart({"x": [(0.0, 1.0)]}, width=5)
    with pytest.raises(ConfigurationError):
        ascii_line_chart({"x": [(0.0, 1.0)]}, height=2)


def test_bar_chart_proportional_lengths():
    out = ascii_bar_chart({"big": 100.0, "half": 50.0, "none": 0.0}, width=20)
    lines = out.splitlines()
    assert lines[0].count("#") == 20
    assert lines[1].count("#") == 10
    assert lines[2].count("#") == 0
    assert "100.0" in lines[0]


def test_bar_chart_units_and_empty():
    out = ascii_bar_chart({"x": 3.0}, unit=" MB")
    assert "3.0 MB" in out
    assert ascii_bar_chart({}) == "(no data)"
