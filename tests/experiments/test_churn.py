"""Tests for the sustained-churn experiment."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import RunOptions, ScenarioScale, run
from repro.experiments.churn import ChurnPlan

TINY = ScenarioScale.tiny()


def test_churn_plan_validation():
    with pytest.raises(ConfigurationError):
        ChurnPlan(interval=0.0)
    with pytest.raises(ConfigurationError):
        ChurnPlan(start=10.0, end=5.0)
    with pytest.raises(ConfigurationError):
        ChurnPlan(join_weight=0.0, leave_weight=0.0, crash_weight=0.0)
    with pytest.raises(ConfigurationError):
        ChurnPlan(leave_weight=-1.0)
    with pytest.raises(ConfigurationError):
        ChurnPlan(min_fraction=0.0)


@pytest.fixture(scope="module")
def graceful_churn():
    plan = ChurnPlan(interval=120.0, start=1800.0, end=14000.0)
    return run(plan, TINY, seed=2)


def test_graceful_churn_loses_no_jobs(graceful_churn):
    m = graceful_churn.metrics
    # Graceful leaves hand every job off: nothing is ever lost.
    lost = [
        r
        for r in m.records.values()
        if not r.completed and not r.unschedulable
    ]
    assert not lost
    assert m.duplicate_executions == 0


def test_churn_changes_grid_size(graceful_churn):
    counts = [v for _, v in graceful_churn.node_count_series]
    assert len(set(counts)) > 1  # the grid actually churned


def test_grid_never_shrinks_below_min_fraction(graceful_churn):
    counts = [v for _, v in graceful_churn.node_count_series]
    assert min(counts) >= max(2, int(0.5 * TINY.nodes)) - 1


def test_crash_churn_failsafe_recovers():
    plan = ChurnPlan(
        interval=180.0, start=1800.0, end=10000.0, crash_weight=1.0
    )
    plain = run(plan, TINY, seed=3, options=RunOptions(failsafe=False))
    safe = run(plan, TINY, seed=3, options=RunOptions(failsafe=True))

    def lost(metrics):
        return sum(
            1
            for r in metrics.records.values()
            if not r.completed and not r.unschedulable
        )

    assert lost(safe.metrics) <= lost(plain.metrics)
    assert safe.metrics.duplicate_executions == 0


def test_churn_scenario_is_labelled(graceful_churn):
    assert graceful_churn.scenario.name == "iMixed+churn"
