"""Shared builders for protocol tests: a tiny hand-wired grid."""

import pytest

from repro.core import AriaAgent, AriaConfig
from repro.grid import AccuracyModel, GridNode
from repro.metrics import GridMetrics
from repro.net import ConstantLatency, SimTransport
from repro.overlay import OverlayGraph
from repro.scheduling import make_scheduler
from repro.sim import Simulator

from ..helpers import LINUX_AMD64


class MiniGrid:
    """A small fully wired ARiA grid for protocol tests."""

    def __init__(self, policies, config=None, profiles=None, indices=None,
                 topology="mesh", latency=0.01, seed=0):
        self.sim = Simulator(seed=seed)
        self.transport = SimTransport(self.sim, latency=ConstantLatency(latency))
        self.metrics = GridMetrics()
        self.graph = OverlayGraph()
        self.config = config if config is not None else AriaConfig()
        self.nodes = []
        self.agents = []
        n = len(policies)
        for i in range(n):
            self.graph.add_node(i)
        if topology == "mesh":
            for i in range(n):
                for j in range(i + 1, n):
                    self.graph.add_link(i, j)
        elif topology == "ring":
            for i in range(n):
                if n > 1:
                    self.graph.add_link(i, (i + 1) % n)
        for i, policy in enumerate(policies):
            node = GridNode(
                node_id=i,
                sim=self.sim,
                profile=(profiles[i] if profiles else LINUX_AMD64),
                performance_index=(indices[i] if indices else 1.0),
                scheduler=make_scheduler(policy),
                accuracy=AccuracyModel(epsilon=0.0),
            )
            agent = AriaAgent(
                node, self.transport, self.graph, self.config, self.metrics
            )
            agent.start()
            self.nodes.append(node)
            self.agents.append(agent)

    def record(self, job_id):
        return self.metrics.records[job_id]


@pytest.fixture
def mini_grid():
    return MiniGrid
