"""Unit tests for INFORM candidate selection (§III-D)."""

import pytest

from repro.core import current_queue_cost, select_inform_candidates
from repro.scheduling import EDFScheduler, FCFSScheduler, SJFScheduler
from repro.types import HOUR

from ..helpers import make_job


def ids(entries):
    return [e.job.job_id for e in entries]


def test_batch_selects_longest_waiting_first():
    s = FCFSScheduler()
    s.enqueue(make_job(1, ert=HOUR), HOUR, now=50.0)
    s.enqueue(make_job(2, ert=HOUR), HOUR, now=10.0)  # waited longest
    s.enqueue(make_job(3, ert=HOUR), HOUR, now=30.0)
    picked = select_inform_candidates(s, 2, now=100.0, running_remaining=0.0)
    assert ids(picked) == [2, 3]


def test_count_limits_candidates():
    s = FCFSScheduler()
    for jid in range(1, 6):
        s.enqueue(make_job(jid, ert=HOUR), HOUR, now=float(jid))
    assert len(select_inform_candidates(s, 2, 100.0, 0.0)) == 2
    assert len(select_inform_candidates(s, 10, 100.0, 0.0)) == 5


def test_empty_queue_selects_nothing():
    assert select_inform_candidates(FCFSScheduler(), 2, 0.0, 0.0) == []


def test_deadline_selects_least_slack_first():
    s = EDFScheduler()
    # Two jobs: EDF order puts the 5h-deadline one first (finishes at 1h,
    # slack 4h); the 10h one second (finishes at 3h, slack 7h).
    s.enqueue(make_job(1, ert=2 * HOUR, deadline=10 * HOUR), 2 * HOUR, now=0.0)
    s.enqueue(make_job(2, ert=1 * HOUR, deadline=5 * HOUR), 1 * HOUR, now=1.0)
    picked = select_inform_candidates(s, 1, now=0.0, running_remaining=0.0)
    assert ids(picked) == [2]


def test_deadline_slack_accounts_for_running_job():
    s = EDFScheduler()
    s.enqueue(make_job(1, ert=HOUR, deadline=3 * HOUR), HOUR, now=0.0)
    s.enqueue(make_job(2, ert=HOUR, deadline=3.5 * HOUR), HOUR, now=1.0)
    # With 1h of running work ahead, job 1 finishes at 2h (slack 1h) and
    # job 2 at 3h (slack 0.5h): job 2 is now the most at risk.
    picked = select_inform_candidates(s, 1, now=0.0, running_remaining=HOUR)
    assert ids(picked) == [2]


def test_current_queue_cost_batch_is_position_ettc():
    s = SJFScheduler()
    s.enqueue(make_job(1, ert=3 * HOUR), 3 * HOUR, now=0.0)
    s.enqueue(make_job(2, ert=1 * HOUR), 1 * HOUR, now=1.0)
    # SJF order: job 2 then job 1.
    assert current_queue_cost(s, 2, now=0.0, running_remaining=0.0) == HOUR
    assert (
        current_queue_cost(s, 1, now=0.0, running_remaining=0.0) == 4 * HOUR
    )


def test_current_queue_cost_deadline_is_whole_queue_nal():
    s = EDFScheduler()
    s.enqueue(make_job(1, ert=HOUR, deadline=4 * HOUR), HOUR, now=0.0)
    s.enqueue(make_job(2, ert=HOUR, deadline=10 * HOUR), HOUR, now=1.0)
    # ETCs 1h and 2h; slacks 3h and 8h; NAL = -(11h) regardless of which
    # job the INFORM advertises.
    for job_id in (1, 2):
        assert current_queue_cost(
            s, job_id, now=0.0, running_remaining=0.0
        ) == -(11 * HOUR)
