"""Unit tests for the durable write-ahead journal.

The journal is the piece that makes the cross-incarnation
no-double-execution invariant survive *real* process deaths: fsync'd
completion records, an incarnation counter in the same file, torn-tail
tolerance for SIGKILL-mid-write, and a file lock standing in for the
"two live incarnations of one node" race.
"""

import json
import os

import pytest

from repro.core.journal import DurableJournal
from repro.errors import JournalError


def _path(tmp_path):
    return os.path.join(str(tmp_path), "node-0.jsonl")


def test_fresh_journal_boots_incarnation_zero(tmp_path):
    with DurableJournal(_path(tmp_path)) as journal:
        assert journal.incarnation is None
        assert journal.completions == []
        assert journal.boot() == 0
        assert journal.incarnation == 0


def test_reopen_bumps_incarnation(tmp_path):
    path = _path(tmp_path)
    with DurableJournal(path) as journal:
        assert journal.boot() == 0
    # Second boot: the previous incarnation is on disk, so this is a
    # crash recovery and the counter moves past it.
    with DurableJournal(path) as journal:
        assert journal.boot() == 1
    with DurableJournal(path) as journal:
        assert journal.boot() == 2


def test_completions_survive_reopen(tmp_path):
    path = _path(tmp_path)
    with DurableJournal(path) as journal:
        journal.boot()
        journal.record_completion(7, 123.5, 0)
        journal.record_completion(9, 200.0, 0)
    with DurableJournal(path) as journal:
        assert journal.completions == [(7, 123.5, 0), (9, 200.0, 0)]
        assert journal.boot() == 1
        journal.record_completion(11, 300.0, 1)
    with DurableJournal(path) as journal:
        assert [job for job, _t, _inc in journal.completions] == [7, 9, 11]
        assert journal.completions[-1][2] == 1


def test_torn_tail_is_dropped_and_truncated(tmp_path):
    path = _path(tmp_path)
    with DurableJournal(path) as journal:
        journal.boot()
        journal.record_completion(7, 123.5, 0)
    # Simulate SIGKILL mid-write: a partial record with no newline.
    with open(path, "ab") as handle:
        handle.write(b'{"k":"done","job":8,')
    with DurableJournal(path) as journal:
        assert journal.torn_bytes == len(b'{"k":"done","job":8,')
        assert [job for job, _t, _inc in journal.completions] == [7]
        # The torn bytes were truncated away, so appending after
        # recovery produces a well-formed file.
        assert journal.boot() == 1
        journal.record_completion(9, 50.0, 1)
    with open(path, "rb") as handle:
        lines = handle.read().splitlines()
    for line in lines:
        json.loads(line)  # every line parses after the repair
    with DurableJournal(path) as journal:
        assert [job for job, _t, _inc in journal.completions] == [7, 9]


def test_interior_corruption_raises(tmp_path):
    path = _path(tmp_path)
    with DurableJournal(path) as journal:
        journal.boot()
    # Newline-terminated garbage is not a torn tail: the file is
    # corrupt and silently skipping records would be data loss.
    with open(path, "ab") as handle:
        handle.write(b"not json\n")
    with pytest.raises(JournalError):
        DurableJournal(path)


def test_second_open_is_rejected_while_locked(tmp_path):
    path = _path(tmp_path)
    first = DurableJournal(path)
    try:
        # A second live incarnation of the same node must not be able to
        # claim the journal while the first still holds it.
        with pytest.raises(JournalError):
            DurableJournal(path)
    finally:
        first.close()
    # Once the first incarnation is gone the journal opens normally.
    with DurableJournal(path) as journal:
        assert journal.boot() == 0


def test_lock_can_be_disabled_for_readers(tmp_path):
    path = _path(tmp_path)
    first = DurableJournal(path)
    try:
        first.boot()
        first.record_completion(3, 10.0, 0)
        reader = DurableJournal(path, lock=False)
        try:
            assert [job for job, _t, _inc in reader.completions] == [3]
        finally:
            reader.close()
    finally:
        first.close()


def test_append_after_close_raises(tmp_path):
    journal = DurableJournal(_path(tmp_path))
    journal.boot()
    journal.close()
    with pytest.raises(JournalError):
        journal.record_completion(1, 1.0, 0)
    journal.close()  # idempotent


def test_unknown_record_kinds_are_skipped(tmp_path):
    path = _path(tmp_path)
    with DurableJournal(path) as journal:
        journal.boot()
    # A future version may add record kinds; an old reader must not
    # choke on them.
    with open(path, "ab") as handle:
        handle.write(b'{"k":"future","x":1}\n')
    with DurableJournal(path) as journal:
        assert journal.incarnation == 0
        assert journal.completions == []
