"""Table I: protocol messages, fields and wire sizes."""

from repro.core import Accept, Assign, Inform, Request, Track
from repro.net import wire_size
from repro.types import HOUR

from ..helpers import make_job


def test_request_fields_match_table_i():
    job = make_job(7)
    msg = Request(initiator=3, job=job, hops_left=8, broadcast_id=(3, 1))
    assert msg.initiator == 3  # Initiator's address
    assert msg.job.job_id == 7  # Job UUID
    assert msg.job.requirements is job.requirements  # Job Profile


def test_accept_fields_match_table_i():
    msg = Accept(node=5, job_id=7, cost=42.0)
    assert msg.node == 5  # Node's address
    assert msg.job_id == 7  # Job UUID
    assert msg.cost == 42.0  # Cost


def test_inform_fields_match_table_i():
    job = make_job(7, ert=HOUR)
    msg = Inform(assignee=2, job=job, cost=9.0, hops_left=7, broadcast_id=(2, 1))
    assert msg.assignee == 2  # Assignee's address
    assert msg.job.job_id == 7  # Job UUID + Job Profile
    assert msg.cost == 9.0  # Cost


def test_assign_fields_match_table_i():
    job = make_job(7)
    msg = Assign(initiator=1, job=job, reschedule=False)
    assert msg.initiator == 1  # Initiator's address
    assert msg.job.job_id == 7  # Job UUID + Job Profile


def test_wire_sizes_match_paper_section_v_e():
    job = make_job(1)
    assert wire_size(Request(0, job, 8, (0, 1))) == 1024
    assert wire_size(Inform(0, job, 0.0, 7, (0, 1))) == 1024
    assert wire_size(Assign(0, job, False)) == 1024
    assert wire_size(Accept(0, 1, 0.0)) == 128
    assert wire_size(Track(1, 2)) == 128


def test_type_names_used_for_traffic_accounting():
    assert Request.type_name() == "Request"
    assert Accept.type_name() == "Accept"
    assert Inform.type_name() == "Inform"
    assert Assign.type_name() == "Assign"
