"""Protocol tests: crash injection and the fail-safe extension (§III-D).

The paper sketches the mechanism: "To ease tracking of jobs, and enable
failsafe mechanisms in the event of an assignee's crash, rescheduling
actions may be notified to the job's initiator."  Our concrete design:
initiators track the current assignee (Track/Done notifications), probe it
periodically, and resubmit a job after two consecutive probe misses.
"""

import pytest

from repro.core import AriaConfig
from repro.errors import ProtocolError, SchedulingError
from repro.types import HOUR, MINUTE

from ..helpers import make_job
from .conftest import MiniGrid


def failsafe_config(**overrides):
    defaults = dict(
        rescheduling=False,
        failsafe=True,
        probe_interval=2 * MINUTE,
        probe_timeout=10.0,
    )
    defaults.update(overrides)
    return AriaConfig(**defaults)


def test_crash_loses_held_jobs():
    grid = MiniGrid(["FCFS", "FCFS"], config=AriaConfig(rescheduling=False))
    for jid in (1, 2):
        job = make_job(jid, ert=HOUR)
        grid.metrics.job_submitted(job, 1, 0.0)
        grid.agents[1].node.accept_job(job)
    lost = grid.agents[1].fail()
    assert [job.job_id for job in lost] == [1, 2]
    assert grid.agents[1].node.is_idle
    assert grid.agents[1].node.crashed


def test_crashed_node_cannot_accept_jobs():
    grid = MiniGrid(["FCFS"], topology="ring")
    grid.agents[0].fail(leave_overlay=False)
    with pytest.raises(SchedulingError):
        grid.agents[0].node.accept_job(make_job(1))


def test_double_fail_raises():
    grid = MiniGrid(["FCFS"], topology="ring")
    grid.agents[0].fail(leave_overlay=False)
    with pytest.raises(ProtocolError):
        grid.agents[0].fail()


def test_crash_cancels_running_completion():
    grid = MiniGrid(["FCFS"], topology="ring")
    job = make_job(1, ert=HOUR)
    grid.metrics.job_submitted(job, 0, 0.0)
    grid.agents[0].node.accept_job(job)
    grid.agents[0].fail(leave_overlay=False)
    grid.sim.run_until(2 * HOUR)
    assert grid.metrics.completed_jobs == 0


def test_without_failsafe_crashed_jobs_are_lost():
    grid = MiniGrid(
        ["FCFS", "FCFS", "FCFS"], config=AriaConfig(rescheduling=False)
    )
    grid.agents[0].submit(make_job(1, ert=2 * HOUR))
    grid.sim.run_until(10 * MINUTE)
    record = grid.record(1)
    assignee = record.assignments[0][1]
    assert assignee != 0 or True  # whoever won, crash them
    grid.agents[assignee].fail()
    grid.sim.run_until(20 * HOUR)
    assert not record.completed


def test_failsafe_resubmits_after_assignee_crash():
    from repro.grid import Architecture, NodeProfile, OperatingSystem

    from ..helpers import LINUX_AMD64

    # Node 0 (the initiator) cannot host AMD64 jobs, so the assignee is
    # always remote and crash recovery is exercised deterministically.
    power = NodeProfile(
        architecture=Architecture.POWER,
        memory_gb=16,
        disk_gb=16,
        os=OperatingSystem.LINUX,
    )
    grid = MiniGrid(
        ["FCFS", "FCFS", "FCFS"],
        config=failsafe_config(),
        profiles=[power, LINUX_AMD64, LINUX_AMD64],
    )
    grid.agents[0].submit(make_job(1, ert=2 * HOUR))
    grid.sim.run_until(10 * MINUTE)
    record = grid.record(1)
    assignee = record.assignments[0][1]
    assert assignee != 0
    grid.agents[assignee].fail()
    grid.sim.run_until(30 * HOUR)
    assert record.resubmissions >= 1
    assert record.completed
    assert record.start_node not in (0, assignee)


def test_failsafe_does_not_resubmit_healthy_jobs():
    grid = MiniGrid(["FCFS", "FCFS", "FCFS"], config=failsafe_config())
    for jid in (1, 2, 3, 4):
        grid.agents[0].submit(make_job(jid, ert=2 * HOUR))
    grid.sim.run_until(30 * HOUR)
    assert grid.metrics.completed_jobs == 4
    assert all(r.resubmissions == 0 for r in grid.metrics.records.values())


def test_failsafe_tracks_across_reschedules():
    # Rescheduling moves the job; Track updates the initiator's belief so
    # probes go to the new assignee and no spurious resubmission happens.
    cfg = failsafe_config(rescheduling=True, inform_interval=MINUTE)
    grid = MiniGrid(["FCFS", "FCFS", "FCFS"], config=cfg)
    for jid in (1, 2, 3, 4, 5):
        grid.agents[0].submit(make_job(jid, ert=3 * HOUR))
    grid.sim.run_until(40 * HOUR)
    assert grid.metrics.completed_jobs == 5
    assert grid.metrics.reschedules >= 1
    assert all(r.resubmissions == 0 for r in grid.metrics.records.values())


def test_failsafe_traffic_uses_small_messages():
    grid = MiniGrid(["FCFS", "FCFS"], config=failsafe_config())
    grid.agents[0].submit(make_job(1, ert=5 * HOUR))
    grid.sim.run_until(6 * HOUR)
    counts = grid.transport.monitor.count_by_type
    if grid.record(1).assignments[0][1] != 0:
        assert counts.get("Probe", 0) >= 1
        assert counts.get("ProbeReply", 0) >= 1
        assert counts.get("Done", 0) == 1


def test_probe_config_validation():
    with pytest.raises(Exception):
        AriaConfig(probe_interval=0.0)
    with pytest.raises(Exception):
        AriaConfig(probe_timeout=-1.0)
