"""Behavioral tests: flood hop budgets actually bound message reach.

A line topology with non-matching relay nodes makes reach measurable: a
REQUEST with a 9-hop budget finds a matching node 9 hops away but not one
10 hops away (§IV-E: "REQUEST messages are forwarded on the overlay for at
most 9 hops").
"""

from repro.core import AriaConfig
from repro.grid import Architecture, NodeProfile, OperatingSystem
from repro.overlay import FloodPolicy
from repro.types import HOUR, MINUTE

from ..helpers import LINUX_AMD64, make_job
from .conftest import MiniGrid

POWER = NodeProfile(
    architecture=Architecture.POWER,
    memory_gb=16,
    disk_gb=16,
    os=OperatingSystem.LINUX,
)


def line_grid(length, matcher_at, config):
    """A line of POWER relays with one AMD64 node at ``matcher_at``."""
    profiles = [POWER] * length
    profiles[matcher_at] = LINUX_AMD64
    grid = MiniGrid(
        ["FCFS"] * length,
        config=config,
        profiles=profiles,
        topology="ring",
    )
    # Break the ring into a line so distance is unambiguous.
    grid.graph.remove_link(0, length - 1)
    return grid


def no_retry_config(max_hops):
    return AriaConfig(
        rescheduling=False,
        request_flood=FloodPolicy(max_hops=max_hops, fanout=4),
        max_request_retries=0,
    )


def test_request_reaches_matching_node_within_budget():
    grid = line_grid(12, matcher_at=9, config=no_retry_config(max_hops=9))
    grid.agents[0].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(10 * MINUTE)
    record = grid.record(1)
    assert not record.unschedulable
    assert record.assignments[0][1] == 9


def test_request_cannot_pass_hop_budget():
    grid = line_grid(12, matcher_at=10, config=no_retry_config(max_hops=9))
    grid.agents[0].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(10 * MINUTE)
    assert grid.record(1).unschedulable


def test_larger_budget_extends_reach():
    grid = line_grid(13, matcher_at=10, config=no_retry_config(max_hops=10))
    grid.agents[0].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(10 * MINUTE)
    assert not grid.record(1).unschedulable


def test_duplicate_suppression_bounds_request_traffic():
    # On a mesh, every node forwards a given REQUEST at most once: the
    # number of Request transmissions is bounded by nodes * fanout + fanout.
    n = 10
    config = AriaConfig(rescheduling=False, max_request_retries=0)
    grid = MiniGrid(
        ["FCFS"] * n, config=config, profiles=[POWER] * n, topology="mesh"
    )
    grid.agents[0].submit(make_job(1, ert=HOUR))  # matches nobody
    grid.sim.run_until(10 * MINUTE)
    sent = grid.transport.monitor.count_by_type["Request"]
    fanout = config.request_flood.fanout
    assert sent <= (n + 1) * fanout
