"""Protocol tests: graceful node departure (volatile resources).

The paper motivates ARiA with "very large sets of highly volatile ...
resources"; graceful departure is the cooperative half of volatility (the
crash half lives in test_failsafe.py).  A leaving node sheds its waiting
queue through hand-off discoveries, finishes its running job, and departs.
"""

import pytest

from repro.core import AriaConfig
from repro.errors import ProtocolError
from repro.types import HOUR, MINUTE

from ..helpers import make_job
from .conftest import MiniGrid


def config(**overrides):
    defaults = dict(rescheduling=False)
    defaults.update(overrides)
    return AriaConfig(**defaults)


def loaded_grid(n=3, cfg=None):
    grid = MiniGrid(["FCFS"] * n, config=cfg or config())
    return grid


def test_leave_hands_off_waiting_jobs():
    grid = loaded_grid()
    # Load node 0 with one running + two waiting jobs (direct enqueue).
    for jid in (1, 2, 3):
        job = make_job(jid, ert=2 * HOUR)
        grid.metrics.job_submitted(job, 0, 0.0)
        grid.metrics.job_assigned(jid, 0, 0.0, reschedule=False)
        grid.agents[0].node.accept_job(job)
        grid.agents[0]._job_initiators[jid] = 0
    handed = grid.agents[0].leave()
    assert handed == 2  # the running job stays
    grid.sim.run_until(30 * HOUR)
    # All three jobs completed: one locally, two on other nodes.
    assert grid.metrics.completed_jobs == 3
    assert grid.metrics.reschedules == 2
    moved = [
        r for r in grid.metrics.records.values() if r.reschedule_count > 0
    ]
    assert all(r.start_node != 0 for r in moved)


def test_leaving_node_departs_after_running_job_finishes():
    grid = loaded_grid()
    job = make_job(1, ert=2 * HOUR)
    grid.metrics.job_submitted(job, 0, 0.0)
    grid.agents[0].node.accept_job(job)
    grid.agents[0].leave()
    assert not grid.agents[0].departed  # still running its job
    grid.sim.run_until(3 * HOUR)
    assert grid.agents[0].departed
    assert not grid.transport.is_registered(0)
    assert not grid.graph.has_node(0)


def test_idle_node_departs_after_grace_period():
    grid = loaded_grid()
    grid.agents[1].leave()
    grid.sim.run_until(1.0)
    assert not grid.agents[1].departed  # lingering for in-flight ASSIGNs
    grid.sim.run_until(grid.config.departure_grace + 1.0)
    assert grid.agents[1].departed
    assert not grid.graph.has_node(1)


def test_leaving_node_stops_offering():
    grid = MiniGrid(["FCFS", "FCFS"], config=config())
    grid.agents[1].leave()
    grid.sim.run_until(1.0)
    grid.agents[0].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(10 * MINUTE)
    # Only node 0 can take the job now.
    assert grid.record(1).start_node == 0


def test_leave_twice_raises():
    grid = loaded_grid()
    grid.agents[0].leave()
    with pytest.raises(ProtocolError):
        grid.agents[0].leave()


def test_leave_after_crash_raises():
    grid = loaded_grid()
    grid.agents[0].fail()
    with pytest.raises(ProtocolError):
        grid.agents[0].leave()


def test_submit_to_dead_or_departed_node_raises():
    grid = loaded_grid()
    grid.agents[0].fail()
    with pytest.raises(ProtocolError):
        grid.agents[0].submit(make_job(1))
    grid.agents[1].leave()
    grid.sim.run_until(2 * MINUTE)
    assert grid.agents[1].departed
    with pytest.raises(ProtocolError):
        grid.agents[1].submit(make_job(2))


def test_handoff_with_no_taker_falls_back_to_local_execution():
    # Single node: nobody can take the hand-off, so the leaving node must
    # run the job itself (accepted jobs are never dropped) and depart after.
    cfg = config(max_request_retries=1, request_retry_interval=10.0)
    grid = MiniGrid(["FCFS", "FCFS"], config=cfg, topology="ring")
    grid.graph.remove_link(0, 1)  # isolate both nodes
    for jid in (1, 2):
        job = make_job(jid, ert=HOUR)
        grid.metrics.job_submitted(job, 0, 0.0)
        grid.agents[0].node.accept_job(job)
    grid.agents[0].leave()
    grid.sim.run_until(10 * HOUR)
    assert grid.metrics.completed_jobs == 2
    assert grid.agents[0].departed


def test_assign_racing_departure_is_redelegated():
    grid = MiniGrid(["FCFS", "FCFS", "FCFS"], config=config())
    # Node 1 wins a discovery, but starts leaving before the ASSIGN lands.
    grid.agents[1].node.performance_index = 2.0  # make it the clear winner
    grid.agents[0].submit(make_job(1, ert=2 * HOUR))
    grid.sim.call_at(5.0, grid.agents[1].leave)  # right at assignment time
    grid.sim.run_until(30 * HOUR)
    record = grid.record(1)
    assert record.completed
    assert record.start_node != 1 or not grid.agents[1].departed


def test_late_assign_within_departure_grace_hands_off_exactly_once():
    # The departure-grace race: node 1 wins the discovery, calls leave()
    # while idle (arming the grace timer), and the ASSIGN lands inside the
    # grace window.  The lingering endpoint must take responsibility and
    # hand the job off exactly once — not drop it, not queue it twice.
    cfg = config(failsafe=True, probe_interval=2 * MINUTE, probe_timeout=10.0)
    grid = MiniGrid(["FCFS", "FCFS", "FCFS"], config=cfg)
    grid.agents[1].node.performance_index = 2.0  # the clear winner
    grid.agents[0].submit(make_job(1, ert=2 * HOUR))
    # accept_wait finalizes at t=5; the ASSIGN is in flight when node 1
    # starts leaving, and arrives within departure_grace (60 s).
    grid.sim.call_at(grid.config.accept_wait, grid.agents[1].leave)
    grid.sim.run_until(30 * HOUR)
    record = grid.record(1)
    assert record.completed
    assert grid.metrics.completed_jobs == 1
    assert grid.metrics.duplicate_executions == 0
    # Exactly one hand-off: the initial delegation to node 1, then the
    # re-delegation to whichever node took it over.
    assert len(record.assignments) == 2
    assert record.assignments[0][1] == 1
    assert record.start_node != 1
    assert record.resubmissions == 0  # tracking followed the hand-off
    assert grid.agents[1].departed


def test_failsafe_tracking_survives_departures():
    cfg = config(failsafe=True, probe_interval=2 * MINUTE, probe_timeout=10.0)
    grid = MiniGrid(["FCFS", "FCFS", "FCFS"], config=cfg)
    for jid in (1, 2, 3, 4):
        grid.agents[0].submit(make_job(jid, ert=2 * HOUR))
    grid.sim.run_until(10 * MINUTE)
    # Some node leaves; its waiting jobs hand off with Track notifications,
    # so no spurious fail-safe resubmission ever fires.
    victim = next(
        a for a in grid.agents if a.node.queue_length > 0 or a.node.running
    )
    victim.leave()
    grid.sim.run_until(40 * HOUR)
    assert grid.metrics.completed_jobs == 4
    assert all(r.resubmissions == 0 for r in grid.metrics.records.values())
