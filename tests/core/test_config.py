"""Unit tests for the protocol configuration defaults and validation."""

import pytest

from repro.core import AriaConfig
from repro.errors import ConfigurationError
from repro.types import MINUTE


def test_defaults_match_paper_baseline():
    cfg = AriaConfig()
    assert cfg.request_flood.max_hops == 9
    assert cfg.request_flood.fanout == 4
    assert cfg.inform_flood.max_hops == 8
    assert cfg.inform_flood.fanout == 2
    assert cfg.inform_interval == 5 * MINUTE
    assert cfg.inform_count == 2
    assert cfg.improvement_threshold == 3 * MINUTE
    assert cfg.rescheduling is True
    assert cfg.notify_initiator is False


def test_validation_rejects_bad_values():
    with pytest.raises(ConfigurationError):
        AriaConfig(accept_wait=0.0)
    with pytest.raises(ConfigurationError):
        AriaConfig(inform_interval=-1.0)
    with pytest.raises(ConfigurationError):
        AriaConfig(inform_count=0)
    with pytest.raises(ConfigurationError):
        AriaConfig(improvement_threshold=-1.0)
    with pytest.raises(ConfigurationError):
        AriaConfig(request_retry_interval=0.0)
    with pytest.raises(ConfigurationError):
        AriaConfig(max_request_retries=-1)


def test_config_is_frozen():
    cfg = AriaConfig()
    with pytest.raises(AttributeError):
        cfg.inform_count = 4
