"""Fine-grained protocol unit tests (agent internals via public effects)."""

import pytest

from repro.core import AriaConfig
from repro.types import HOUR, MINUTE

from ..helpers import make_job
from .conftest import MiniGrid


def test_self_offer_uses_cost_at_decision_time():
    # The initiator quotes itself when the wait expires, not at submit:
    # work accepted during the window raises its own quote, so the job
    # goes to the other (now cheaper) node.
    grid = MiniGrid(["FCFS", "FCFS"], config=AriaConfig(rescheduling=False))
    grid.agents[0].submit(make_job(1, ert=HOUR))
    # Inject a big job directly into node 0 during the accept window.
    blocker = make_job(99, ert=8 * HOUR)
    grid.metrics.job_submitted(blocker, 0, 0.0)
    grid.sim.call_at(2.0, grid.agents[0].node.accept_job, blocker)
    grid.sim.run_until(10 * MINUTE)
    assert grid.record(1).start_node == 1


def test_retry_uses_fresh_broadcast():
    # First flood finds nobody (matching node joins the overlay later);
    # the retry discovers it.
    from repro.grid import Architecture, NodeProfile, OperatingSystem

    from ..helpers import LINUX_AMD64

    power = NodeProfile(
        architecture=Architecture.POWER,
        memory_gb=16,
        disk_gb=16,
        os=OperatingSystem.LINUX,
    )
    cfg = AriaConfig(
        rescheduling=False, request_retry_interval=60.0, max_request_retries=5
    )
    grid = MiniGrid(
        ["FCFS", "FCFS"], config=cfg, profiles=[power, power]
    )
    grid.agents[0].submit(make_job(1, ert=HOUR))
    # A capable node appears 90 s in (between retry 1 and 2).
    from repro.core import AriaAgent
    from repro.grid import AccuracyModel, GridNode
    from repro.scheduling import make_scheduler

    def add_capable():
        node = GridNode(
            node_id=2,
            sim=grid.sim,
            profile=LINUX_AMD64,
            performance_index=1.0,
            scheduler=make_scheduler("FCFS"),
            accuracy=AccuracyModel(epsilon=0.0),
        )
        grid.graph.add_node(2)
        grid.graph.add_link(2, 0)
        grid.graph.add_link(2, 1)
        AriaAgent(node, grid.transport, grid.graph, cfg, grid.metrics)

    grid.sim.call_at(90.0, add_capable)
    grid.sim.run_until(2 * HOUR)
    record = grid.record(1)
    assert record.start_node == 2
    assert not record.unschedulable


def test_request_traffic_counts_relays():
    # Non-matching middle node relays: more Request transmissions than the
    # initiator's own fanout.
    from repro.grid import Architecture, NodeProfile, OperatingSystem

    from ..helpers import LINUX_AMD64

    power = NodeProfile(
        architecture=Architecture.POWER,
        memory_gb=16,
        disk_gb=16,
        os=OperatingSystem.LINUX,
    )
    grid = MiniGrid(
        ["FCFS", "FCFS", "FCFS"],
        config=AriaConfig(rescheduling=False),
        profiles=[power, power, LINUX_AMD64],
        topology="ring",
    )
    grid.graph.remove_link(0, 2)  # line: 0 - 1 - 2
    grid.agents[0].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(10 * MINUTE)
    assert grid.record(1).start_node == 2
    # 0->1 plus the relay 1->2: at least two Request transmissions.
    assert grid.transport.monitor.count_by_type["Request"] >= 2


def test_agents_do_not_reprocess_duplicate_broadcasts():
    grid = MiniGrid(["FCFS"] * 4, config=AriaConfig(rescheduling=False))
    grid.agents[0].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(10 * MINUTE)
    # Full mesh of 4: everyone matches, so everyone answers exactly once.
    assert grid.transport.monitor.count_by_type["Accept"] == 3


def test_stopped_agent_sends_no_more_informs():
    cfg = AriaConfig(rescheduling=True, inform_interval=MINUTE)
    grid = MiniGrid(["FCFS", "FCFS"], config=cfg)
    for jid in (1, 2, 3, 4):
        grid.agents[0].submit(make_job(jid, ert=5 * HOUR))
    grid.sim.run_until(10 * MINUTE)
    before = grid.transport.monitor.count_by_type.get("Inform", 0)
    for agent in grid.agents:
        agent.stop()
    grid.sim.run_until(30 * MINUTE)
    after = grid.transport.monitor.count_by_type.get("Inform", 0)
    assert after == before


def test_start_is_idempotent():
    cfg = AriaConfig(rescheduling=True, inform_interval=MINUTE)
    grid = MiniGrid(["FCFS", "FCFS"], config=cfg)
    agent = grid.agents[0]
    agent.start()  # second call must not double the INFORM cadence
    agent.node.accept_job(make_job_with_metrics(grid, 1, 5 * HOUR))
    agent.node.accept_job(make_job_with_metrics(grid, 2, 5 * HOUR))
    grid.sim.run_until(10 * MINUTE + 1)
    informs = grid.metrics.inform_broadcasts
    # At most one candidate per round per configured schedule (2 per round
    # for 10 rounds = 20 max with a single clock; a doubled clock would
    # exceed it).
    assert informs <= 11  # one waiting job advertised per ~minute


def make_job_with_metrics(grid, jid, ert):
    job = make_job(jid, ert=ert)
    grid.metrics.job_submitted(job, 0, grid.sim.now)
    return job
