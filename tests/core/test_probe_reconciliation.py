"""Protocol tests: probe-reply reconciliation under lossy control plane.

The fail-safe extension (§III-D) assumes Track/Done notifications arrive.
On an unreliable network either can be permanently lost (e.g. dropped
throughout a partition while the retry budget runs out), so ProbeReply
carries two reconciliation fields — ``done`` and ``new_assignee`` — that
let the initiator repair its tracking state from the probed node's own
memory.  These tests drive the reconciliation paths directly.
"""

from repro.core import AriaConfig
from repro.core.messages import Probe, ProbeReply
from repro.types import HOUR, MINUTE

from ..helpers import make_job
from .conftest import MiniGrid


def failsafe_config(**overrides):
    defaults = dict(
        rescheduling=False,
        failsafe=True,
        probe_interval=2 * MINUTE,
        probe_timeout=10.0,
    )
    defaults.update(overrides)
    return AriaConfig(**defaults)


def tracked_grid(n=3):
    """A grid where agent 0 tracks job 1 with believed assignee 1."""
    grid = MiniGrid(["FCFS"] * n, config=failsafe_config())
    job = make_job(1, ert=HOUR)
    grid.metrics.job_submitted(job, 0, 0.0)
    grid.agents[0]._tracked[1] = (job, 1)
    return grid, job


def test_done_reply_heals_a_lost_done_notification():
    # Agent 1 executed job 1 but its Done never arrived: agent 0 still
    # tracks it.  The probe reply's ``done`` flag reconciles.
    grid, _job = tracked_grid()
    grid.agents[1]._completed.add(1, 0.0)
    grid.agents[1]._handle_probe(0, Probe(1, initiator=0))
    grid.sim.run_until(MINUTE)
    assert 1 not in grid.agents[0]._tracked
    assert grid.agents[0]._suspect.get(1) is None


def test_forwarding_pointer_heals_a_lost_track_notification():
    # Agent 1 re-delegated job 1 to agent 2 but the Track was lost: the
    # probe reply's forwarding pointer redirects the tracking.
    grid, job = tracked_grid()
    grid.agents[1]._redelegated[1] = 2
    grid.agents[2].node.accept_job(job)
    grid.agents[1]._handle_probe(0, Probe(1, initiator=0))
    grid.sim.run_until(MINUTE)
    assert grid.agents[0]._tracked[1] == (job, 2)
    assert grid.agents[0]._suspect.get(1) is None


def test_pointer_back_at_self_without_the_job_counts_as_miss():
    # The forwarding pointer says "I sent it back to you", but nothing
    # ever arrived — the re-ASSIGN itself died.  Tracking it forever
    # would strand the job; the reply must count as a probe miss.
    grid, _job = tracked_grid()
    grid.agents[0]._handle_probe_reply(
        1, ProbeReply(1, holds=False, new_assignee=0)
    )
    assert grid.agents[0]._suspect[1] == 1
    assert 1 in grid.agents[0]._tracked  # one miss does not resubmit


def test_duplicate_not_held_reply_counts_one_miss():
    # At-least-once delivery can hand the initiator the same "not held"
    # reply twice.  Only the copy that settles the pending probe timeout
    # may count — otherwise one unanswered round looks like two.
    grid, _job = tracked_grid()
    agent = grid.agents[0]
    agent._probe_timeouts[1] = grid.sim.call_after(
        10.0, agent._probe_missed, 1
    )
    agent._handle_probe_reply(1, ProbeReply(1, holds=False))
    assert agent._suspect[1] == 1
    agent._handle_probe_reply(1, ProbeReply(1, holds=False))  # duplicate
    assert agent._suspect[1] == 1  # still one miss


def test_held_reply_clears_suspicion():
    grid, job = tracked_grid()
    grid.agents[1].node.accept_job(job)
    grid.agents[0]._suspect[1] = 1
    grid.agents[1]._handle_probe(0, Probe(1, initiator=0))
    grid.sim.run_until(MINUTE)
    assert grid.agents[0]._suspect.get(1) is None
    assert grid.agents[0]._tracked[1] == (job, 1)


def test_resubmitted_job_rejects_stale_duplicate_assign():
    # A node that already executed a job drops a late duplicate ASSIGN
    # for it (lost-Done + fail-safe resubmission race): accepting would
    # double-execute.
    from repro.core.messages import Assign

    grid, job = tracked_grid()
    agent = grid.agents[1]
    agent._completed.add(1, 0.0)
    agent._handle_assign(0, Assign(initiator=0, job=job, reschedule=False))
    assert not agent.node.holds_job(1)
    assert grid.metrics.records[1].assignments == []
