"""Unit tests for the bounded completion log (dedup-memory cap).

The log replaces the protocol's unbounded ``_completed`` set.  Eviction
must bound memory without re-enabling double execution: an entry may
only be dropped when the log is over its size cap *and* the entry is
older than every plausible duplicate-ASSIGN replay window.
"""

import pytest

from repro.core.completion import CompletionLog
from repro.errors import ConfigurationError


def test_validation():
    with pytest.raises(ConfigurationError):
        CompletionLog(max_size=0)
    with pytest.raises(ConfigurationError):
        CompletionLog(min_age=-1.0)


def test_membership_and_times():
    log = CompletionLog()
    log.add(1, 10.0)
    assert 1 in log
    assert 2 not in log
    assert len(log) == 1
    assert log.completed_at(1) == 10.0
    assert log.completed_at(2) is None


def test_over_cap_old_entries_are_evicted_oldest_first():
    log = CompletionLog(max_size=3, min_age=100.0)
    for job_id in range(3):
        log.add(job_id, float(job_id))
    log.add(99, 1000.0)  # far past every entry's replay window
    assert len(log) == 3
    assert 0 not in log  # the oldest went
    assert 1 in log and 2 in log and 99 in log


def test_young_entries_are_never_evicted_even_over_cap():
    # Entries inside the replay window are exactly the ones a stale
    # duplicate ASSIGN could still target: the cap must not outrank the
    # age guard, else eviction re-enables double execution.
    log = CompletionLog(max_size=2, min_age=100.0)
    log.add(1, 1000.0)
    log.add(2, 1001.0)
    log.add(3, 1002.0)  # over cap, but nothing is older than min_age
    assert len(log) == 3
    assert 1 in log and 2 in log and 3 in log
    # Once time passes the window, the cap reasserts itself.
    log.add(4, 1200.0)
    assert len(log) == 2
    assert 1 not in log and 2 not in log
    assert 3 in log and 4 in log


def test_eviction_stops_at_the_first_young_entry():
    log = CompletionLog(max_size=1, min_age=50.0)
    log.add(1, 0.0)
    log.add(2, 90.0)
    log.add(3, 100.0)
    # Entry 1 (age 100) is evictable; entry 2 (age 10) is not, so the
    # log stays over cap rather than dropping a replayable entry.
    assert 1 not in log
    assert 2 in log and 3 in log
    assert len(log) == 2
