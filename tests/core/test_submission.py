"""Protocol tests: submission and acceptance phases (§III-B, §III-C)."""

import pytest

from repro.core import AriaConfig
from repro.errors import ProtocolError
from repro.grid import Architecture, NodeProfile, OperatingSystem
from repro.types import HOUR, MINUTE

from ..helpers import make_job
from .conftest import MiniGrid


def test_job_goes_to_cheapest_node():
    # Node 2 is the fastest (p=2.0) and idle: lowest ETTC must win.
    grid = MiniGrid(["FCFS", "FCFS", "FCFS"], indices=[1.0, 1.0, 2.0])
    grid.agents[0].submit(make_job(1, ert=2 * HOUR))
    grid.sim.run_until(30.0)
    record = grid.record(1)
    assert record.assignments[0][1] == 2
    assert record.start_node == 2


def test_submission_does_not_imply_local_execution():
    grid = MiniGrid(["FCFS", "FCFS"], indices=[1.0, 2.0])
    grid.agents[0].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(30.0)
    assert grid.record(1).start_node == 1


def test_initiator_can_win_its_own_request():
    # Initiator is the fastest node: the job stays local.
    grid = MiniGrid(["FCFS", "FCFS"], indices=[2.0, 1.0])
    grid.agents[0].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(30.0)
    assert grid.record(1).start_node == 0


def test_busy_nodes_quote_higher_costs():
    grid = MiniGrid(["FCFS", "FCFS"], indices=[1.0, 1.0])
    # Pre-load node 1 with work so node 0 wins the next submission.
    grid.agents[1].submit(make_job(1, ert=4 * HOUR))
    grid.sim.run_until(60.0)
    assert grid.record(1).start_node in (0, 1)
    busy = grid.record(1).start_node
    idle = 1 - busy
    grid.agents[busy].submit(make_job(2, ert=HOUR))
    grid.sim.run_until(120.0)
    assert grid.record(2).start_node == idle


def test_only_matching_nodes_offer():
    power = NodeProfile(
        architecture=Architecture.POWER,
        memory_gb=16,
        disk_gb=16,
        os=OperatingSystem.LINUX,
    )
    amd = NodeProfile(
        architecture=Architecture.AMD64,
        memory_gb=4,
        disk_gb=4,
        os=OperatingSystem.LINUX,
    )
    # Node 1 (POWER) is faster but cannot host an AMD64 job.
    grid = MiniGrid(
        ["FCFS", "FCFS", "FCFS"],
        profiles=[amd, power, amd],
        indices=[1.0, 2.0, 1.5],
    )
    grid.agents[0].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(30.0)
    assert grid.record(1).start_node == 2


def test_unmatchable_job_retries_then_gives_up():
    cfg = AriaConfig(
        rescheduling=False, max_request_retries=2, request_retry_interval=10.0
    )
    power = NodeProfile(
        architecture=Architecture.POWER,
        memory_gb=16,
        disk_gb=16,
        os=OperatingSystem.LINUX,
    )
    grid = MiniGrid(["FCFS", "FCFS"], profiles=[power, power], config=cfg)
    grid.agents[0].submit(make_job(1, ert=HOUR))  # needs AMD64
    grid.sim.run_until(5 * MINUTE)
    record = grid.record(1)
    assert record.unschedulable
    assert not record.assignments


def test_batch_jobs_do_not_land_on_deadline_schedulers():
    grid = MiniGrid(["EDF", "FCFS"], indices=[2.0, 1.0])
    grid.agents[0].submit(make_job(1, ert=HOUR))  # no deadline: batch job
    grid.sim.run_until(30.0)
    assert grid.record(1).start_node == 1  # EDF node may not host it


def test_deadline_jobs_only_land_on_deadline_schedulers():
    grid = MiniGrid(["EDF", "FCFS"], indices=[1.0, 2.0])
    grid.agents[0].submit(make_job(1, ert=HOUR, deadline=10 * HOUR))
    grid.sim.run_until(30.0)
    assert grid.record(1).start_node == 0


def test_duplicate_submission_raises():
    grid = MiniGrid(["FCFS"], topology="ring")
    job = make_job(1)
    grid.agents[0].submit(job)
    with pytest.raises(ProtocolError):
        grid.agents[0].submit(job)


def test_assignment_recorded_before_start():
    grid = MiniGrid(["FCFS", "FCFS"])
    grid.agents[0].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(30.0)
    record = grid.record(1)
    assert len(record.assignments) == 1
    assign_time, node = record.assignments[0]
    assert assign_time <= record.start_time
    assert node == record.start_node


def test_completion_metrics_flow():
    grid = MiniGrid(["FCFS", "FCFS"])
    grid.agents[0].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(2 * HOUR)
    record = grid.record(1)
    assert record.completed
    assert record.execution_time == pytest.approx(HOUR)
    assert grid.metrics.completed_jobs == 1


def test_ties_break_deterministically_by_node_id():
    grid = MiniGrid(["FCFS", "FCFS", "FCFS"])  # identical nodes
    grid.agents[2].submit(make_job(1, ert=HOUR))
    grid.sim.run_until(30.0)
    # All quotes are equal (1h); the lowest node id must win.
    assert grid.record(1).assignments[0][1] == 0
