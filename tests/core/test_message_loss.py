"""Protocol robustness under message loss (extension; paper assumes
reliable delivery).

Which losses matter: REQUEST/ACCEPT losses are absorbed by the initiator's
retry loop; INFORM/rescheduling-ACCEPT losses only forgo an optimization;
an ASSIGN loss orphans the job under the plain protocol — and the
fail-safe extension recovers exactly that case.
"""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ScenarioScale, get_scenario, run
from repro.net import ConstantLatency, Message, SimTransport
from repro.sim import Simulator

TINY = ScenarioScale.tiny()


class Ping(Message):
    SIZE_BYTES = 8
    __slots__ = ()


def test_transport_loss_rate_is_respected():
    sim = Simulator(seed=0)
    transport = SimTransport(
        sim, latency=ConstantLatency(0.01), loss_probability=0.3
    )
    received = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: received.append(msg))
    for _ in range(2000):
        transport.send(1, 2, Ping())
    sim.run()
    assert transport.lost + len(received) == 2000
    assert 0.25 < transport.lost / 2000 < 0.35
    # Lost messages still count as traffic (they were transmitted).
    assert transport.monitor.count_by_type["Ping"] == 2000


def test_local_delivery_never_lost():
    sim = Simulator(seed=0)
    transport = SimTransport(sim, loss_probability=0.9)
    received = []
    transport.register(1, lambda src, msg: received.append(msg))
    for _ in range(50):
        transport.send(1, 1, Ping())
    sim.run()
    assert len(received) == 50


def test_loss_probability_validation():
    sim = Simulator(seed=0)
    with pytest.raises(ConfigurationError):
        SimTransport(sim, loss_probability=1.0)
    with pytest.raises(ConfigurationError):
        SimTransport(sim, loss_probability=-0.1)


def lossy_scenario(loss, failsafe=False):
    scenario = dataclasses.replace(
        get_scenario("iMixed"), name=f"iMixed@loss{loss}", message_loss=loss
    )
    return scenario


def test_retries_absorb_moderate_loss():
    from repro.experiments import build_grid

    result = run(lossy_scenario(0.05), TINY, seed=2)
    metrics = result.metrics
    # 5% loss: the retry loop still gets almost every job placed and done.
    assert (
        metrics.completed_jobs + metrics.unschedulable_count()
        >= 0.9 * TINY.jobs
    )


def test_failsafe_recovers_lost_assigns():
    from repro.experiments import build_grid

    def run(failsafe):
        setup = build_grid(
            lossy_scenario(0.10),
            TINY,
            seed=2,
            config_overrides=(
                {"failsafe": True, "probe_interval": 300.0}
                if failsafe
                else None
            ),
        )
        return setup.run().metrics

    plain = run(False)
    safe = run(True)

    def unresolved(metrics):
        return sum(
            1
            for r in metrics.records.values()
            if not r.completed and not r.unschedulable
        )

    # The fail-safe must resolve at least as many jobs under a lossy
    # network as the plain protocol.
    assert safe.completed_jobs >= plain.completed_jobs
    assert unresolved(safe) <= unresolved(plain)
