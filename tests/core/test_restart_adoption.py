"""Protocol tests: crash-restart incarnations, orphan adoption, deadlines.

Three robustness mechanisms layered onto the §III-D fail-safe:

* **Crash-restart** — a crashed node may rejoin under a fresh
  incarnation; volatile state is lost, the completion journal survives.
* **Orphan adoption** — an assignee whose initiator has gone silent for
  ``adoption_windows`` probe intervals takes over the initiator role
  (the initiator-crash blind spot of the paper's fail-safe sketch).
* **Execution deadlines** — a queued job stuck past its estimate on a
  (possibly fail-slow) node is re-advertised with a growing cost
  penalty until another node pulls it away.
"""

import pytest

from repro.core import AriaConfig
from repro.core.messages import Assign, Probe
from repro.errors import ProtocolError, SchedulingError
from repro.types import HOUR, MINUTE

from ..helpers import make_job
from .conftest import MiniGrid


def failsafe_config(**overrides):
    defaults = dict(
        rescheduling=False,
        failsafe=True,
        probe_interval=2 * MINUTE,
        probe_timeout=10.0,
    )
    defaults.update(overrides)
    return AriaConfig(**defaults)


def assign_tracked_job(grid, job, initiator=0, assignee=1):
    """Deliver an ASSIGN and mirror the initiator-side tracking state."""
    grid.metrics.job_submitted(job, initiator, grid.sim.now)
    grid.agents[assignee]._handle_assign(
        initiator, Assign(initiator=initiator, job=job, reschedule=False)
    )
    grid.agents[initiator]._tracked[job.job_id] = (job, assignee)
    return job


# ----------------------------------------------------------------------
# Crash-restart
# ----------------------------------------------------------------------
def test_restart_requires_a_crash():
    grid = MiniGrid(["FCFS"] * 2)
    with pytest.raises(ProtocolError):
        grid.agents[0].restart()


def test_restart_rejoins_under_a_fresh_incarnation():
    grid = MiniGrid(["FCFS"] * 2, config=failsafe_config())
    agent = grid.agents[1]
    agent.fail()
    assert not grid.transport.is_registered(1)
    agent.restart()
    assert agent.incarnation == 1
    assert not agent.failed
    assert grid.transport.is_registered(1)
    assert grid.transport.incarnation_stamp(1) == 1
    assert grid.metrics.node_restarts == 1


def test_completion_journal_survives_restart_and_blocks_replay():
    # The durable journal is a safety requirement: a duplicate ASSIGN
    # arriving after the restart (e.g. a confused tracker resubmitting a
    # job whose Done died with the crash) must still be rejected, or the
    # reborn node re-executes it.
    grid = MiniGrid(["FCFS"] * 2, config=failsafe_config())
    job = make_job(1, ert=MINUTE)
    assign_tracked_job(grid, job)
    grid.sim.run_until(10 * MINUTE)
    assert grid.metrics.completed_jobs == 1
    agent = grid.agents[1]
    assert 1 in agent._completed
    agent.fail()
    agent.restart()
    assert 1 in agent._completed  # journal survived
    agent._handle_assign(0, Assign(initiator=0, job=job, reschedule=False))
    assert not agent.node.holds_job(1)
    grid.sim.run_until(20 * MINUTE)
    assert grid.metrics.duplicate_executions == 0


def test_restart_loses_volatile_state():
    grid = MiniGrid(["FCFS"] * 3, config=failsafe_config())
    job = make_job(1, ert=HOUR)
    assign_tracked_job(grid, job, initiator=0, assignee=1)
    agent = grid.agents[0]
    agent._suspect[1] = 1
    agent.fail()
    agent.restart()
    assert agent._tracked == {}
    assert agent._suspect == {}
    assert agent._job_initiators == {}
    assert agent._last_probe == {}


def test_crash_records_pending_discoveries_as_lost():
    # A job still *in discovery* when its initiator crashes has no
    # assignee and no tracker — nothing can recover it.  It must be
    # recorded as lost, not silently dropped from the books.
    grid = MiniGrid(["FCFS"] * 2, config=failsafe_config())
    agent = grid.agents[0]
    job = make_job(7, ert=HOUR)
    agent.submit(job)
    agent.fail()  # before any Accept can arrive
    assert grid.metrics.records[7].lost_count == 1


def test_node_revive_and_slowdown_guards():
    grid = MiniGrid(["FCFS"] * 1)
    node = grid.nodes[0]
    with pytest.raises(SchedulingError):
        node.revive()  # not crashed
    with pytest.raises(SchedulingError):
        node.apply_slowdown(0.5)  # a speed-up is not a failure
    node.apply_slowdown(4.0)
    assert node.slowdown_factor == 4.0


# ----------------------------------------------------------------------
# Orphan adoption (initiator-crash recovery) — the regression arm
# ----------------------------------------------------------------------
def adoption_grid(adoption):
    grid = MiniGrid(
        ["FCFS"] * 3,
        config=failsafe_config(adoption=adoption, adoption_windows=2),
    )
    job = make_job(1, ert=HOUR)
    assign_tracked_job(grid, job, initiator=0, assignee=1)
    grid.agents[0].fail()  # the initiator dies right after assigning
    return grid, job


def test_initiator_crash_without_adoption_counts_the_orphan():
    grid, _job = adoption_grid(adoption=False)
    grid.sim.run_until(2 * HOUR)
    assert grid.metrics.orphaned_jobs == 1
    assert grid.metrics.adopted_jobs == 0


def test_initiator_crash_with_adoption_completes_exactly_once():
    grid, job = adoption_grid(adoption=True)
    grid.sim.run_until(20 * MINUTE)
    # The assignee noticed the silence and took over the initiator role.
    assert grid.metrics.orphaned_jobs == 1
    assert grid.metrics.adopted_jobs == 1
    agent = grid.agents[1]
    assert 1 in agent._adopted
    assert agent._job_initiators[1] == 1
    assert agent._tracked[1] == (job, 1)
    grid.sim.run_until(2 * HOUR)
    # Completed exactly once; as its own initiator the adopter suppresses
    # the Done that would otherwise chase the dead node, and untracks.
    assert grid.metrics.completed_jobs == 1
    assert grid.metrics.duplicate_executions == 0
    assert 1 not in agent._tracked


def test_probe_from_a_live_initiator_cedes_adoption_back():
    # False adoption (the initiator was merely partitioned away, or
    # restarted): its next probe proves it alive, and the adopter cedes
    # the initiator role back instead of double-tracking.
    grid, job = adoption_grid(adoption=True)
    grid.sim.run_until(20 * MINUTE)
    agent = grid.agents[1]
    assert 1 in agent._adopted
    agent._handle_probe(0, Probe(1, initiator=0))
    assert 1 not in agent._adopted
    assert agent._job_initiators[1] == 0
    assert 1 not in agent._tracked


# ----------------------------------------------------------------------
# Execution deadlines (fail-slow straggler defense)
# ----------------------------------------------------------------------
def test_overdue_queued_job_is_re_advertised_and_pulled_away():
    grid = MiniGrid(
        ["FCFS"] * 2,
        config=AriaConfig(
            rescheduling=True,
            improvement_threshold=0.0,
            exec_deadline_slack=2.0,
        ),
    )
    running = make_job(1, ert=HOUR)
    queued = make_job(2, ert=HOUR)
    grid.metrics.job_submitted(running, 0, 0.0)
    grid.metrics.job_submitted(queued, 0, 0.0)
    agent = grid.agents[1]
    agent._handle_assign(0, Assign(initiator=0, job=running, reschedule=False))
    agent._handle_assign(0, Assign(initiator=0, job=queued, reschedule=False))
    grid.sim.run_until(1.0)
    # The running job's deadline has nothing left to defend; the queued
    # job's was armed at assignment.
    assert 1 not in agent._exec_deadlines
    assert 2 in agent._exec_deadlines
    # Force the queued job far past its deadline and run an INFORM round:
    # the idle peer's honest quote beats the penalized cost and pulls it.
    agent._exec_deadlines[2] = 0.5
    agent._inform_round()
    grid.sim.run_until(MINUTE)
    assert grid.metrics.deadline_exceeded_jobs == 1
    assert grid.agents[0].node.holds_job(2)
    assert not agent.node.holds_job(2)
    assert 2 not in agent._exec_deadlines  # forgotten on withdrawal
