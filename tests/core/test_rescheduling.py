"""Protocol tests: the dynamic rescheduling phase (§III-D)."""

import pytest

from repro.core import AriaConfig
from repro.types import HOUR, MINUTE

from ..helpers import make_job
from .conftest import MiniGrid


def fast_resched_config(**overrides):
    """Rescheduling config with a short INFORM period for test speed."""
    defaults = dict(
        rescheduling=True,
        inform_interval=MINUTE,
        inform_count=2,
        improvement_threshold=3 * MINUTE,
    )
    defaults.update(overrides)
    return AriaConfig(**defaults)


def loaded_two_node_grid(config):
    """Node 0 busy with a long queue; node 1 joins later via the overlay."""
    grid = MiniGrid(["FCFS", "FCFS"], config=config, topology="mesh")
    return grid


def test_waiting_jobs_rebalance_through_informs():
    grid = loaded_two_node_grid(fast_resched_config())
    a0 = grid.agents[0]
    # Three 4h jobs submitted together to node 0.  The concurrent REQUEST
    # phases see stale costs, so the initial allocation is lopsided; the
    # INFORM phase must rebalance the waiting jobs across both nodes.
    for jid in (1, 2, 3):
        a0.submit(make_job(jid, ert=4 * HOUR))
    grid.sim.run_until(HOUR)
    # Rebalanced: both nodes are executing, at most one job still waits.
    assert all(n.running is not None for n in grid.nodes)
    assert sum(n.queue_length for n in grid.nodes) == 1
    assert grid.metrics.reschedules >= 1
    # Optimal makespan for 3x4h on 2 nodes is 8h.
    grid.sim.run_until(9 * HOUR)
    assert grid.metrics.completed_jobs == 3
    # A rescheduled job ends up executing on its final assignee.
    for record in grid.metrics.records.values():
        assert record.start_node == record.assignments[-1][1]


def test_no_rescheduling_when_disabled():
    grid = loaded_two_node_grid(
        AriaConfig(rescheduling=False)
    )
    for jid in (1, 2, 3):
        grid.agents[0].submit(make_job(jid, ert=4 * HOUR))
    grid.sim.run_until(10 * HOUR)
    assert grid.metrics.reschedules == 0
    assert all(
        r.reschedule_count == 0 for r in grid.metrics.records.values()
    )


def test_rescheduling_improves_completion_time():
    def run(rescheduling):
        cfg = fast_resched_config() if rescheduling else AriaConfig(
            rescheduling=False
        )
        grid = MiniGrid(["FCFS"] * 3, config=cfg, seed=7)
        # Node 0 initiates 6 jobs of 2h each; with 3 equal nodes each gets
        # ~2; later jobs queue. Rescheduling lets queues rebalance when
        # estimates drift.
        for jid in range(1, 7):
            grid.agents[0].submit(make_job(jid, ert=2 * HOUR))
        grid.sim.run_until(24 * HOUR)
        assert grid.metrics.completed_jobs == 6
        return grid.metrics.average_completion_time()

    assert run(True) <= run(False) + 1.0


def test_running_jobs_are_never_rescheduled():
    grid = loaded_two_node_grid(fast_resched_config())
    grid.agents[0].submit(make_job(1, ert=4 * HOUR))
    grid.sim.run_until(2 * HOUR)
    record = grid.record(1)
    started_on = record.start_node
    grid.sim.run_until(6 * HOUR)
    assert record.completed
    # Finished where it started: no migration of a running job.
    assert record.assignments[-1][1] == started_on
    assert record.reschedule_count == 0


def test_improvement_threshold_blocks_marginal_gains():
    # With a huge threshold, even a clearly better node is not used.
    grid = loaded_two_node_grid(
        fast_resched_config(improvement_threshold=100 * HOUR)
    )
    for jid in (1, 2, 3):
        grid.agents[0].submit(make_job(jid, ert=4 * HOUR))
    grid.sim.run_until(10 * HOUR)
    assert grid.metrics.reschedules == 0


def test_inform_count_limits_candidates_per_round():
    cfg = fast_resched_config(inform_count=1)
    grid = MiniGrid(["FCFS", "FCFS"], config=cfg)
    for jid in range(1, 8):
        grid.agents[0].submit(make_job(jid, ert=3 * HOUR))
    grid.sim.run_until(30 * HOUR)
    # All jobs complete eventually even with the tighter INFORM budget.
    assert grid.metrics.completed_jobs == 7


def test_reschedule_assignments_are_tracked_in_history():
    grid = loaded_two_node_grid(fast_resched_config())
    for jid in (1, 2, 3):
        grid.agents[0].submit(make_job(jid, ert=4 * HOUR))
    grid.sim.run_until(12 * HOUR)
    moved = [
        r for r in grid.metrics.records.values() if r.reschedule_count > 0
    ]
    assert moved
    record = moved[0]
    # History: initial assignment plus one reschedule, different nodes.
    assert len(record.assignments) == 2
    assert record.assignments[0][1] != record.assignments[1][1]
    assert record.start_node == record.assignments[1][1]


def test_deadline_rescheduling_reduces_missed_deadlines():
    def run(rescheduling):
        cfg = fast_resched_config() if rescheduling else AriaConfig(
            rescheduling=False
        )
        grid = MiniGrid(["EDF"] * 3, config=cfg, seed=11)
        t = grid.sim.now
        for jid in range(1, 10):
            grid.agents[0].submit(
                make_job(jid, ert=2 * HOUR, deadline=t + 6.5 * HOUR)
            )
        grid.sim.run_until(30 * HOUR)
        assert grid.metrics.completed_jobs == 9
        return grid.metrics.missed_deadline_count()

    assert run(True) <= run(False)


def test_track_notification_sent_when_enabled():
    from repro.grid import Architecture, NodeProfile, OperatingSystem

    cfg = fast_resched_config(notify_initiator=True)
    power = NodeProfile(
        architecture=Architecture.POWER,
        memory_gb=16,
        disk_gb=16,
        os=OperatingSystem.LINUX,
    )
    from ..helpers import LINUX_AMD64

    # Node 2 initiates but cannot host, so the assignee always differs from
    # the initiator and reschedules must produce Track notifications.
    grid = MiniGrid(
        ["FCFS", "FCFS", "FCFS"],
        config=cfg,
        profiles=[LINUX_AMD64, LINUX_AMD64, power],
    )
    for jid in (1, 2, 3, 4):
        grid.agents[2].submit(make_job(jid, ert=4 * HOUR))
    grid.sim.run_until(12 * HOUR)
    assert grid.metrics.reschedules >= 1
    assert grid.transport.monitor.count_by_type.get("Track", 0) >= 1


def test_no_track_traffic_by_default():
    grid = loaded_two_node_grid(fast_resched_config())
    for jid in (1, 2, 3):
        grid.agents[0].submit(make_job(jid, ert=4 * HOUR))
    grid.sim.run_until(12 * HOUR)
    assert "Track" not in grid.transport.monitor.count_by_type
