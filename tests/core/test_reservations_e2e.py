"""End-to-end tests: advance reservations through executor and protocol."""

import random

import pytest

from repro.core import AriaConfig
from repro.errors import ConfigurationError, SchedulingError
from repro.scheduling import make_scheduler
from repro.types import HOUR, MINUTE
from repro.workload import JobGenerator

from ..helpers import make_job, make_node
from .conftest import MiniGrid


def test_executor_waits_for_reservation():
    sim, node = make_node(scheduler=make_scheduler("RESERVATION"))
    node.accept_job(make_job(1, ert=HOUR, not_before=2 * HOUR))
    sim.run_until(HOUR)
    assert node.running is None  # machine held for the reservation
    sim.run_until(2 * HOUR)
    assert node.running is not None
    sim.run_until(3 * HOUR)
    assert node.completed_jobs == 1


def test_executor_backfills_while_waiting():
    sim, node = make_node(scheduler=make_scheduler("BACKFILL"))
    starts = []
    node.on_job_started.append(lambda n, r: starts.append((r.job.job_id, sim.now)))
    node.accept_job(make_job(1, ert=HOUR, not_before=4 * HOUR))
    node.accept_job(make_job(2, ert=2 * HOUR))
    sim.run_until(10 * HOUR)
    assert starts[0][0] == 2 and starts[0][1] == 0.0  # backfilled at once
    assert starts[1][0] == 1 and starts[1][1] == pytest.approx(4 * HOUR)


def test_non_reservation_scheduler_rejects_reserved_jobs():
    sim, node = make_node()  # FCFS
    with pytest.raises(SchedulingError):
        node.accept_job(make_job(1, ert=HOUR, not_before=HOUR))


def test_protocol_routes_reserved_jobs_to_capable_nodes():
    grid = MiniGrid(
        ["FCFS", "RESERVATION"],
        config=AriaConfig(rescheduling=False),
        indices=[2.0, 1.0],  # the FCFS node is faster but incapable
    )
    grid.agents[0].submit(make_job(1, ert=HOUR, not_before=2 * HOUR))
    grid.sim.run_until(10 * HOUR)
    record = grid.record(1)
    assert record.start_node == 1
    assert record.start_time >= 2 * HOUR
    assert record.completed


def test_reserved_job_with_no_capable_node_is_unschedulable():
    cfg = AriaConfig(
        rescheduling=False, max_request_retries=1, request_retry_interval=30.0
    )
    grid = MiniGrid(["FCFS", "FCFS"], config=cfg)
    grid.agents[0].submit(make_job(1, ert=HOUR, not_before=HOUR))
    grid.sim.run_until(30 * MINUTE)
    assert grid.record(1).unschedulable


def test_generator_reservation_support():
    gen = JobGenerator(
        random.Random(0),
        reservation_probability=0.5,
        reservation_delay_mean=2 * HOUR,
    )
    jobs = [gen.make_job(100.0) for _ in range(300)]
    reserved = [j for j in jobs if j.not_before is not None]
    assert 100 < len(reserved) < 200  # ~50%
    for job in reserved:
        delay = job.not_before - job.submit_time
        assert 0.8 * HOUR <= delay <= 3.2 * HOUR  # 0.4x .. 1.6x of mean


def test_generator_reservation_validation():
    with pytest.raises(ConfigurationError):
        JobGenerator(random.Random(0), reservation_probability=1.5,
                     reservation_delay_mean=HOUR)
    with pytest.raises(ConfigurationError):
        JobGenerator(random.Random(0), reservation_probability=0.5)


def test_job_reservation_validation():
    with pytest.raises(ConfigurationError):
        make_job(1, ert=HOUR, submit_time=2 * HOUR, not_before=HOUR)
