"""Unit tests for incarnation-stamped delivery (crash-restart support).

When incarnation stamping is enabled, every message is stamped with the
destination's incarnation number at *send* time; delivery drops the
message if the destination has since restarted under a fresh incarnation
(``net.dropped_stale``).  This is what makes a node's previous life
unreachable: ASSIGNs, retransmissions and acks addressed to the dead
incarnation can never corrupt the reborn node's state.
"""

from repro.net import ConstantLatency, Message, SimTransport
from repro.net.reliability import ReliabilityLayer
from repro.sim import Simulator


class Ping(Message):
    SIZE_BYTES = 64
    __slots__ = ("tag",)

    def __init__(self, tag: str = "") -> None:
        self.tag = tag


def make_transport(delay=0.05):
    sim = Simulator(seed=1)
    transport = SimTransport(sim, latency=ConstantLatency(delay))
    return sim, transport


def test_stamping_disabled_by_default():
    _, transport = make_transport()
    assert transport.incarnation_stamp(1) is None


def test_bump_auto_enables_and_increments():
    _, transport = make_transport()
    assert transport.bump_incarnation(7) == 1
    assert transport.bump_incarnation(7) == 2
    assert transport.incarnation_stamp(7) == 2
    assert transport.incarnation_stamp(8) == 0  # never restarted


def test_stamped_delivery_to_current_incarnation():
    sim, transport = make_transport()
    transport.enable_incarnations()
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg.tag))
    transport.send(1, 2, Ping("ok"))
    sim.run()
    assert got == ["ok"]
    assert transport.dropped_stale == 0


def test_restart_between_send_and_delivery_drops_the_message():
    sim, transport = make_transport(0.05)
    transport.enable_incarnations()
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg.tag))
    transport.send(1, 2, Ping("stale"))
    # The destination "restarts" while the message is in flight.
    transport.bump_incarnation(2)
    sim.run()
    assert got == []
    assert transport.dropped_stale == 1
    assert transport.network_counters()["dropped_stale"] == 1


def test_retransmissions_stay_stamped_with_the_original_incarnation():
    # The reliability layer captures the stamp at first send: a restart
    # between the original transmission and a retransmission must not
    # let the retry leak into the fresh incarnation.
    sim, transport = make_transport(0.05)
    transport.enable_incarnations()
    reliable = ReliabilityLayer(transport)
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg.tag))
    reliable.send(1, 2, Ping("retry"))
    # Node 2 restarts while the first copy is still in flight: that copy
    # and every retransmission carry the stale stamp and are dropped.
    transport.bump_incarnation(2)
    sim.run()
    assert got == []
    assert reliable.retransmissions > 0
    assert reliable.gave_up == 1
    assert transport.dropped_stale == 1 + reliable.retransmissions


def test_ack_to_a_restarted_sender_is_dropped():
    # Acks carry the *sender's* incarnation: an ack chasing a sender that
    # crashed and restarted must not settle the reborn node's state.
    sim, transport = make_transport(0.05)
    transport.enable_incarnations()
    reliable = ReliabilityLayer(transport)
    received = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: received.append(msg.tag))
    reliable.send(1, 2, Ping("x"))
    sim.run_until(0.06)  # delivered; the ack is now in flight back to 1
    assert received == ["x"]
    transport.bump_incarnation(1)  # sender restarts before the ack lands
    sim.run()
    assert transport.dropped_stale >= 1
