"""Unit tests for the wire-message base class."""

from repro.net import Message, wire_size


class Small(Message):
    SIZE_BYTES = 128
    __slots__ = ()


class Big(Message):
    SIZE_BYTES = 1024
    __slots__ = ("payload",)

    def __init__(self, payload):
        self.payload = payload


def test_wire_size_reads_class_attribute():
    assert wire_size(Small()) == 128
    assert wire_size(Big("x" * 10_000)) == 1024  # fixed, not content-based


def test_type_name_is_class_name():
    assert Small.type_name() == "Small"
    assert Big("x").type_name() == "Big"


def test_base_message_has_zero_size():
    assert wire_size(Message()) == 0


def test_slots_prevent_arbitrary_attributes():
    import pytest

    with pytest.raises(AttributeError):
        Small().stray = 1
