"""Unit tests for latency models."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net import ConstantLatency, PairwiseLogNormalLatency, UniformLatency


def test_constant_latency_returns_fixed_delay():
    model = ConstantLatency(0.1)
    rng = random.Random(0)
    assert model.sample(1, 2, rng) == 0.1
    assert model.sample(5, 9, rng) == 0.1


def test_constant_latency_rejects_negative():
    with pytest.raises(ConfigurationError):
        ConstantLatency(-0.1)


def test_uniform_latency_within_range():
    model = UniformLatency(0.01, 0.05)
    rng = random.Random(0)
    for _ in range(200):
        assert 0.01 <= model.sample(1, 2, rng) <= 0.05


def test_uniform_latency_rejects_bad_range():
    with pytest.raises(ConfigurationError):
        UniformLatency(0.05, 0.01)
    with pytest.raises(ConfigurationError):
        UniformLatency(-1.0, 0.01)


def test_lognormal_base_delay_is_stable_per_pair():
    model = PairwiseLogNormalLatency(jitter=0.0)
    rng = random.Random(0)
    first = model.sample(1, 2, rng)
    second = model.sample(1, 2, rng)
    assert first == second


def test_lognormal_base_delay_is_symmetric():
    model = PairwiseLogNormalLatency(jitter=0.0)
    rng = random.Random(0)
    assert model.sample(1, 2, rng) == model.sample(2, 1, rng)


def test_lognormal_pairs_differ():
    model = PairwiseLogNormalLatency(jitter=0.0)
    rng = random.Random(0)
    assert model.sample(1, 2, rng) != model.sample(3, 4, rng)


def test_lognormal_jitter_adds_bounded_noise():
    model = PairwiseLogNormalLatency(jitter=0.005)
    rng = random.Random(0)
    base_model = PairwiseLogNormalLatency(jitter=0.0)
    base_rng = random.Random(0)
    base = base_model.sample(1, 2, base_rng)
    for _ in range(100):
        delay = model.sample(1, 2, rng)
        assert base <= delay <= base + 0.005


def test_lognormal_median_is_roughly_respected():
    model = PairwiseLogNormalLatency(median=0.025, sigma=0.5, jitter=0.0)
    rng = random.Random(7)
    delays = sorted(model.sample(i, i + 1, rng) for i in range(0, 2000, 2))
    median = delays[len(delays) // 2]
    assert 0.02 < median < 0.032


def test_lognormal_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        PairwiseLogNormalLatency(median=0.0)
    with pytest.raises(ConfigurationError):
        PairwiseLogNormalLatency(sigma=-1.0)
    with pytest.raises(ConfigurationError):
        PairwiseLogNormalLatency(jitter=-0.1)
