"""Unit tests for traffic accounting."""

from repro.net import TrafficMonitor


def test_record_accumulates_bytes_and_counts():
    mon = TrafficMonitor()
    mon.record("Request", 1024)
    mon.record("Request", 1024)
    mon.record("Accept", 128)
    assert mon.bytes_by_type == {"Request": 2048, "Accept": 128}
    assert mon.count_by_type == {"Request": 2, "Accept": 1}
    assert mon.total_bytes == 2176
    assert mon.total_messages == 3


def test_report_per_node_and_bandwidth():
    mon = TrafficMonitor()
    # 3 MB per node over 42 h for 500 nodes is the paper's ballpark: 149 bps.
    per_node = 3e6
    nodes = 500
    duration = 42 * 3600.0
    mon.record("Inform", int(per_node * nodes))
    report = mon.report(node_count=nodes, duration=duration)
    assert report.bytes_per_node == per_node
    assert abs(report.bandwidth_bps - per_node * 8 / duration) < 1e-9
    assert 140 < report.bandwidth_bps < 170


def test_report_handles_empty_grid():
    report = TrafficMonitor().report(node_count=0, duration=0.0)
    assert report.bytes_per_node == 0.0
    assert report.bandwidth_bps == 0.0
    assert report.total_bytes == 0


def test_report_megabytes_accessor():
    mon = TrafficMonitor()
    mon.record("Assign", 2_500_000)
    report = mon.report(node_count=10, duration=100.0)
    assert report.megabytes("Assign") == 2.5
    assert report.megabytes("Missing") == 0.0


def test_report_copies_are_independent():
    mon = TrafficMonitor()
    mon.record("Request", 100)
    report = mon.report(node_count=1, duration=1.0)
    mon.record("Request", 100)
    assert report.bytes_by_type["Request"] == 100
