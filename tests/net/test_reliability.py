"""Unit tests for the at-least-once reliability layer."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import FaultPlan, apply_fault_plan
from repro.net import (
    ConstantLatency,
    Message,
    ReliabilityConfig,
    ReliabilityLayer,
    SimTransport,
)
from repro.sim import Simulator


class Ping(Message):
    SIZE_BYTES = 64
    __slots__ = ("tag",)

    def __init__(self, tag: int = 0) -> None:
        self.tag = tag


def make_layer(delay=0.05, seed=1, config=None, loss=0.0):
    sim = Simulator(seed=seed)
    transport = SimTransport(
        sim, latency=ConstantLatency(delay), loss_probability=loss
    )
    layer = ReliabilityLayer(transport, config=config)
    return sim, transport, layer


def test_constructor_attaches_to_transport():
    _, transport, layer = make_layer()
    assert transport.reliability is layer


def test_reliable_send_delivers_once_and_acks():
    sim, transport, layer = make_layer()
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append((src, msg.tag)))
    layer.send(1, 2, Ping(7))
    sim.run()
    assert got == [(1, 7)]
    assert layer.delivered == 1
    assert layer.retransmissions == 0
    assert layer.acks_sent == 1
    assert not layer._pending


def test_local_send_bypasses_the_layer():
    sim, transport, layer = make_layer()
    got = []
    transport.register(1, lambda src, msg: got.append(msg.tag))
    layer.send(1, 1, Ping(3))
    sim.run()
    assert got == [3]
    assert layer.acks_sent == 0
    assert layer.delivered == 0


def test_delivery_survives_heavy_loss_exactly_once():
    # 40% i.i.d. transport loss takes out payloads *and* acks.  The
    # guarantee: no message is ever handled twice, and a message can only
    # go missing if the sender exhausted its retry budget (gave up).
    sim, transport, layer = make_layer(loss=0.4)
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg.tag))
    count = 200
    for tag in range(count):
        layer.send(1, 2, Ping(tag))
    sim.run()
    assert len(got) == len(set(got))  # never handled twice
    missing = count - len(set(got))
    assert missing <= layer.gave_up
    assert missing < count * 0.05  # the vast majority still arrives
    assert layer.retransmissions > 0
    assert not layer._pending


def test_moderate_loss_delivers_everything():
    sim, transport, layer = make_layer(loss=0.25)
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg.tag))
    count = 200
    for tag in range(count):
        layer.send(1, 2, Ping(tag))
    sim.run()
    assert sorted(got) == list(range(count))  # all delivered, none twice
    assert layer.retransmissions > 0
    assert not layer._pending


def test_faulted_duplicates_are_suppressed():
    sim, transport, layer = make_layer()
    apply_fault_plan(transport, FaultPlan(loss=0.0, duplicate=0.9))
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg.tag))
    count = 100
    for tag in range(count):
        layer.send(1, 2, Ping(tag))
    sim.run()
    assert sorted(got) == list(range(count))
    assert layer.duplicates_suppressed > 0


def test_gives_up_after_bounded_retries():
    config = ReliabilityConfig(max_retries=3)
    sim, transport, layer = make_layer(config=config)
    transport.register(1, lambda src, msg: None)
    layer.send(1, 99, Ping())  # nobody home: every copy is dropped
    sim.run()
    assert layer.gave_up == 1
    assert layer.retransmissions == 3
    assert not layer._pending
    # All four attempts were dropped at the unknown destination.
    assert transport.dropped_unknown == 4


def test_give_up_horizon_bounds_the_defaults():
    config = ReliabilityConfig()
    horizon = config.give_up_horizon()
    # Defaults: sum(min(2^k, 30) * 1.5 for k in 0..7) = 181.5 s — must
    # stay below the fault experiments' probe_interval (600 s).
    assert horizon == pytest.approx(181.5)
    assert horizon < 600.0


def test_same_seed_runs_are_deterministic():
    def trace(seed):
        sim, transport, layer = make_layer(seed=seed, loss=0.3)
        got = []
        transport.register(1, lambda src, msg: None)
        transport.register(2, lambda src, msg: got.append((sim.now, msg.tag)))
        for tag in range(50):
            layer.send(1, 2, Ping(tag))
        sim.run()
        return got, layer.retransmissions

    assert trace(5) == trace(5)
    assert trace(5) != trace(6)


def test_unregister_forgets_sender_state():
    sim, transport, layer = make_layer(delay=10.0)
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: None)
    layer.send(1, 2, Ping())
    assert layer._pending
    transport.unregister(1)  # the sender crashes mid-flight
    assert not layer._pending  # no retransmissions from a dead node
    sim.run()
    assert layer.gave_up == 0


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(ack_timeout=0.0)
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(max_timeout=0.5)  # below ack_timeout
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(backoff=0.5)
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(max_retries=-1)
    with pytest.raises(ConfigurationError):
        ReliabilityConfig(jitter=-0.1)


def test_counters_shape():
    _, _, layer = make_layer()
    assert layer.counters() == {
        "reliable_delivered": 0,
        "reliable_retransmissions": 0,
        "reliable_acks": 0,
        "reliable_duplicates_suppressed": 0,
        "reliable_gave_up": 0,
        "reliable_pending": 0,
    }
