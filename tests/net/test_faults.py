"""Unit tests for the composable network-fault models."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.experiments import FaultPlan, apply_fault_plan
from repro.net import ConstantLatency, FaultInjector, Message, SimTransport, SpikeLatency
from repro.sim import Simulator


class Ping(Message):
    SIZE_BYTES = 64
    __slots__ = ("tag",)

    def __init__(self, tag: str = "") -> None:
        self.tag = tag


def make_injector(plan, seed=1):
    sim = Simulator(seed=seed)
    return sim, FaultInjector(sim, plan)


# ----------------------------------------------------------------------
# Gilbert–Elliott loss chain
# ----------------------------------------------------------------------
def test_no_faults_judges_everything_deliverable():
    _, injector = make_injector(FaultPlan(loss=0.0, duplicate=0.0))
    assert all(injector.judge(1, 2) == 1 for _ in range(200))
    assert injector.counters() == {
        "fault_iid_lost": 0,
        "fault_burst_lost": 0,
        "fault_partition_dropped": 0,
        "fault_duplicated": 0,
    }


def test_iid_loss_rate_is_respected():
    _, injector = make_injector(FaultPlan(loss=0.3, duplicate=0.0))
    total = 5000
    lost = sum(1 for _ in range(total) if injector.judge(1, 2) == 0)
    assert injector.iid_lost == lost
    assert 0.25 < lost / total < 0.35


def test_burst_state_loses_at_burst_rate():
    # burst_enter=1 drives the chain into the bad state after the first
    # judged message; burst_loss=1 then loses everything until exit.
    plan = FaultPlan(
        loss=0.0,
        duplicate=0.0,
        burst_enter=0.99,
        burst_exit=0.2,
        burst_loss=1.0,
    )
    _, injector = make_injector(plan)
    verdicts = [injector.judge(1, 2) for _ in range(2000)]
    assert injector.burst_lost > 0
    assert injector.iid_lost == 0
    # Bursts end: the chain keeps delivering between bursts.
    assert verdicts.count(1) > 0


def test_burst_lengths_follow_exit_probability():
    plan = FaultPlan(
        loss=0.0,
        duplicate=0.0,
        burst_enter=0.05,
        burst_exit=0.5,
        burst_loss=1.0,
    )
    _, injector = make_injector(plan)
    for _ in range(20000):
        injector.judge(1, 2)
    # Mean burst length = 1/burst_exit = 2 judged messages; with
    # burst_loss=1 every judged-in-bad message is lost.
    assert injector.burst_lost > 0


def _mean_burst_length(burst_exit, total=60000, seed=5):
    # With loss=0 a good-state judgment always delivers, so maximal runs
    # of 0-verdicts are exactly the bad-state streaks of the chain.
    plan = FaultPlan(
        loss=0.0,
        duplicate=0.0,
        burst_enter=0.05,
        burst_exit=burst_exit,
        burst_loss=1.0,
    )
    _, injector = make_injector(plan, seed=seed)
    verdicts = [injector.judge(1, 2) for _ in range(total)]
    bursts = []
    run = 0
    for verdict in verdicts:
        if verdict == 0:
            run += 1
        elif run:
            bursts.append(run)
            run = 0
    if run:
        bursts.append(run)
    assert len(bursts) > 200  # enough samples to estimate the mean
    return sum(bursts) / len(bursts)


def test_mean_burst_length_tracks_one_over_exit_probability():
    # Geometric(burst_exit) burst lengths: mean = 1/burst_exit.
    assert 1.8 < _mean_burst_length(0.5) < 2.2
    assert 3.5 < _mean_burst_length(0.25) < 4.5


def test_counters_partition_the_judged_messages():
    # Every 0-verdict lands in exactly one loss counter and every
    # 2-verdict in the duplication counter: the counters reconcile
    # against the verdict stream with nothing dropped or double-counted.
    plan = FaultPlan(
        loss=0.2,
        duplicate=0.1,
        burst_enter=0.05,
        burst_exit=0.5,
        burst_loss=1.0,
        partitions=((0.0, 1_000_000.0),),
        partition_fraction=0.3,
    )
    _, injector = make_injector(plan)
    verdicts = [injector.judge(n % 7, (n + 1) % 7) for n in range(5000)]
    counters = injector.counters()
    lost = (
        counters["fault_iid_lost"]
        + counters["fault_burst_lost"]
        + counters["fault_partition_dropped"]
    )
    assert lost == verdicts.count(0)
    assert counters["fault_duplicated"] == verdicts.count(2)
    assert lost + verdicts.count(1) + verdicts.count(2) == len(verdicts)
    assert all(value > 0 for value in counters.values())


def test_duplication_delivers_two_copies():
    _, injector = make_injector(FaultPlan(loss=0.0, duplicate=0.9))
    verdicts = [injector.judge(1, 2) for _ in range(300)]
    assert 2 in verdicts
    assert injector.duplicated == verdicts.count(2)


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def test_partition_window_cuts_cross_side_traffic():
    plan = FaultPlan(
        loss=0.0,
        duplicate=0.0,
        partitions=((10.0, 20.0),),
        partition_fraction=0.5,
    )
    sim, injector = make_injector(plan)
    # Pin the sides deterministically: 1 minority, 2 majority.
    injector._side[1] = True
    injector._side[2] = False
    injector._side[3] = True

    assert not injector.partitioned(1, 2)  # before the window
    sim.call_at(15.0, lambda: None)
    sim.run()
    assert sim.now == 15.0
    assert injector.partitioned(1, 2)       # cross-cut
    assert not injector.partitioned(1, 3)   # same side
    assert injector.judge(1, 2) == 0
    assert injector.judge(1, 3) == 1
    assert injector.counters()["fault_partition_dropped"] == 1

    sim.call_at(25.0, lambda: None)
    sim.run()
    assert not injector.partitioned(1, 2)  # healed
    assert injector.judge(1, 2) == 1


def test_partition_sides_are_stable_for_the_run():
    plan = FaultPlan(partitions=((0.0, 100.0),), partition_fraction=0.5)
    _, injector = make_injector(plan)
    first = [injector._side_of(n) for n in range(50)]
    again = [injector._side_of(n) for n in range(50)]
    assert first == again


def test_partition_sides_are_sticky_across_windows():
    # Two disjoint outage windows must cut the node set the *same* way:
    # a node cannot observably move between data centres mid-run.
    plan = FaultPlan(
        loss=0.0,
        duplicate=0.0,
        partitions=((10.0, 20.0), (30.0, 40.0)),
        partition_fraction=0.5,
    )
    sim, injector = make_injector(plan)
    sides_first = {n: injector._side_of(n) for n in range(40)}

    sim.call_at(35.0, lambda: None)
    sim.run()
    assert sim.now == 35.0  # inside the second window
    assert {n: injector._side_of(n) for n in range(40)} == sides_first

    minority = [n for n, side in sides_first.items() if side]
    majority = [n for n, side in sides_first.items() if not side]
    assert minority and majority  # fraction=0.5 over 40 nodes
    # The second window cuts along the sides drawn for the first.
    assert injector.judge(minority[0], majority[0]) == 0
    if len(majority) >= 2:
        assert injector.judge(majority[0], majority[1]) == 1


# ----------------------------------------------------------------------
# Delay spikes
# ----------------------------------------------------------------------
def test_spike_latency_adds_nonnegative_extra_delay():
    base = ConstantLatency(0.05)
    spiky = SpikeLatency(base, probability=0.3, mean=2.0)
    rng = random.Random(7)
    samples = [spiky.sample(1, 2, rng) for _ in range(2000)]
    assert all(s >= 0.05 for s in samples)
    spiked = sum(1 for s in samples if s > 0.05)
    assert 0.2 < spiked / len(samples) < 0.4


def test_spike_latency_zero_probability_is_transparent():
    base = ConstantLatency(0.05)
    spiky = SpikeLatency(base, probability=0.0, mean=2.0)
    rng = random.Random(7)
    assert all(spiky.sample(1, 2, rng) == 0.05 for _ in range(100))


def test_spike_latency_validates_parameters():
    base = ConstantLatency(0.05)
    with pytest.raises(ConfigurationError):
        SpikeLatency(base, probability=1.5, mean=2.0)
    with pytest.raises(ConfigurationError):
        SpikeLatency(base, probability=0.1, mean=0.0)


# ----------------------------------------------------------------------
# FaultPlan validation and transport wiring
# ----------------------------------------------------------------------
def test_fault_plan_validates_fields():
    with pytest.raises(ConfigurationError):
        FaultPlan(loss=1.5)
    with pytest.raises(ConfigurationError):
        FaultPlan(burst_exit=0.0)
    with pytest.raises(ConfigurationError):
        FaultPlan(partition_fraction=0.0)
    with pytest.raises(ConfigurationError):
        FaultPlan(partitions=((20.0, 10.0),))


def test_fault_plan_normalizes_json_lists():
    plan = FaultPlan(partitions=[[10, 20], [30, 40]])
    assert plan.partitions == ((10.0, 20.0), (30.0, 40.0))


def test_apply_fault_plan_attaches_injector_and_spikes():
    sim = Simulator(seed=1)
    transport = SimTransport(sim, latency=ConstantLatency(0.05))
    plan = FaultPlan(delay_spike=0.1, delay_spike_mean=1.0)
    injector = apply_fault_plan(transport, plan)
    assert transport.faults is injector
    assert isinstance(transport.latency, SpikeLatency)


def test_transport_counts_fault_losses_as_lost():
    sim = Simulator(seed=1)
    transport = SimTransport(sim, latency=ConstantLatency(0.01))
    apply_fault_plan(transport, FaultPlan(loss=0.5, duplicate=0.0))
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg))
    count = 500
    for _ in range(count):
        transport.send(1, 2, Ping())
    sim.run()
    assert len(got) + transport.lost == count
    assert transport.lost > 0
    counters = transport.network_counters()
    assert counters["fault_iid_lost"] == transport.lost


# ----------------------------------------------------------------------
# Clock genericity: the same model judges on sim and wall clocks
# ----------------------------------------------------------------------
def test_injector_judges_over_a_wall_clock():
    import asyncio

    from repro.runtime import WallClock

    async def main():
        clock = WallClock(asyncio.get_running_loop(), seed=1)
        try:
            injector = FaultInjector(
                clock, FaultPlan(loss=0.5, duplicate=0.0)
            )
            total = 2000
            lost = sum(
                1 for _ in range(total) if injector.judge(1, 2) == 0
            )
            assert 0.4 < lost / total < 0.6
        finally:
            clock.stop()

    asyncio.run(main())


def test_same_seed_gives_identical_verdicts_on_both_clocks():
    # Both clocks derive the "net.faults" stream from the same seed, so
    # a chaos plan written against the simulator shapes the live wire
    # with the *same* per-message verdict sequence.
    import asyncio

    from repro.runtime import WallClock

    plan = FaultPlan(
        loss=0.2,
        duplicate=0.1,
        burst_enter=0.05,
        burst_exit=0.5,
        burst_loss=1.0,
    )
    sim_injector = FaultInjector(Simulator(seed=9), plan)
    sim_verdicts = [sim_injector.judge(1, 2) for _ in range(500)]

    async def main():
        clock = WallClock(asyncio.get_running_loop(), seed=9)
        try:
            live_injector = FaultInjector(clock, plan)
            return [live_injector.judge(1, 2) for _ in range(500)]
        finally:
            clock.stop()

    assert asyncio.run(main()) == sim_verdicts


def test_transport_delivers_duplicate_copies():
    sim = Simulator(seed=1)
    transport = SimTransport(sim, latency=ConstantLatency(0.01))
    apply_fault_plan(transport, FaultPlan(loss=0.0, duplicate=0.9))
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg))
    count = 100
    for _ in range(count):
        transport.send(1, 2, Ping())
    sim.run()
    duplicated = transport.network_counters()["fault_duplicated"]
    assert duplicated > 0
    assert len(got) == count + duplicated
