"""Unit tests for the composable network-fault models."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.experiments import FaultPlan, apply_fault_plan
from repro.net import ConstantLatency, FaultInjector, Message, SimTransport, SpikeLatency
from repro.sim import Simulator


class Ping(Message):
    SIZE_BYTES = 64
    __slots__ = ("tag",)

    def __init__(self, tag: str = "") -> None:
        self.tag = tag


def make_injector(plan, seed=1):
    sim = Simulator(seed=seed)
    return sim, FaultInjector(sim, plan)


# ----------------------------------------------------------------------
# Gilbert–Elliott loss chain
# ----------------------------------------------------------------------
def test_no_faults_judges_everything_deliverable():
    _, injector = make_injector(FaultPlan(loss=0.0, duplicate=0.0))
    assert all(injector.judge(1, 2) == 1 for _ in range(200))
    assert injector.counters() == {
        "fault_iid_lost": 0,
        "fault_burst_lost": 0,
        "fault_partition_dropped": 0,
        "fault_duplicated": 0,
    }


def test_iid_loss_rate_is_respected():
    _, injector = make_injector(FaultPlan(loss=0.3, duplicate=0.0))
    total = 5000
    lost = sum(1 for _ in range(total) if injector.judge(1, 2) == 0)
    assert injector.iid_lost == lost
    assert 0.25 < lost / total < 0.35


def test_burst_state_loses_at_burst_rate():
    # burst_enter=1 drives the chain into the bad state after the first
    # judged message; burst_loss=1 then loses everything until exit.
    plan = FaultPlan(
        loss=0.0,
        duplicate=0.0,
        burst_enter=0.99,
        burst_exit=0.2,
        burst_loss=1.0,
    )
    _, injector = make_injector(plan)
    verdicts = [injector.judge(1, 2) for _ in range(2000)]
    assert injector.burst_lost > 0
    assert injector.iid_lost == 0
    # Bursts end: the chain keeps delivering between bursts.
    assert verdicts.count(1) > 0


def test_burst_lengths_follow_exit_probability():
    plan = FaultPlan(
        loss=0.0,
        duplicate=0.0,
        burst_enter=0.05,
        burst_exit=0.5,
        burst_loss=1.0,
    )
    _, injector = make_injector(plan)
    for _ in range(20000):
        injector.judge(1, 2)
    # Mean burst length = 1/burst_exit = 2 judged messages; with
    # burst_loss=1 every judged-in-bad message is lost.
    assert injector.burst_lost > 0


def test_duplication_delivers_two_copies():
    _, injector = make_injector(FaultPlan(loss=0.0, duplicate=0.9))
    verdicts = [injector.judge(1, 2) for _ in range(300)]
    assert 2 in verdicts
    assert injector.duplicated == verdicts.count(2)


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def test_partition_window_cuts_cross_side_traffic():
    plan = FaultPlan(
        loss=0.0,
        duplicate=0.0,
        partitions=((10.0, 20.0),),
        partition_fraction=0.5,
    )
    sim, injector = make_injector(plan)
    # Pin the sides deterministically: 1 minority, 2 majority.
    injector._side[1] = True
    injector._side[2] = False
    injector._side[3] = True

    assert not injector.partitioned(1, 2)  # before the window
    sim.call_at(15.0, lambda: None)
    sim.run()
    assert sim.now == 15.0
    assert injector.partitioned(1, 2)       # cross-cut
    assert not injector.partitioned(1, 3)   # same side
    assert injector.judge(1, 2) == 0
    assert injector.judge(1, 3) == 1
    assert injector.counters()["fault_partition_dropped"] == 1

    sim.call_at(25.0, lambda: None)
    sim.run()
    assert not injector.partitioned(1, 2)  # healed
    assert injector.judge(1, 2) == 1


def test_partition_sides_are_stable_for_the_run():
    plan = FaultPlan(partitions=((0.0, 100.0),), partition_fraction=0.5)
    _, injector = make_injector(plan)
    first = [injector._side_of(n) for n in range(50)]
    again = [injector._side_of(n) for n in range(50)]
    assert first == again


# ----------------------------------------------------------------------
# Delay spikes
# ----------------------------------------------------------------------
def test_spike_latency_adds_nonnegative_extra_delay():
    base = ConstantLatency(0.05)
    spiky = SpikeLatency(base, probability=0.3, mean=2.0)
    rng = random.Random(7)
    samples = [spiky.sample(1, 2, rng) for _ in range(2000)]
    assert all(s >= 0.05 for s in samples)
    spiked = sum(1 for s in samples if s > 0.05)
    assert 0.2 < spiked / len(samples) < 0.4


def test_spike_latency_zero_probability_is_transparent():
    base = ConstantLatency(0.05)
    spiky = SpikeLatency(base, probability=0.0, mean=2.0)
    rng = random.Random(7)
    assert all(spiky.sample(1, 2, rng) == 0.05 for _ in range(100))


def test_spike_latency_validates_parameters():
    base = ConstantLatency(0.05)
    with pytest.raises(ConfigurationError):
        SpikeLatency(base, probability=1.5, mean=2.0)
    with pytest.raises(ConfigurationError):
        SpikeLatency(base, probability=0.1, mean=0.0)


# ----------------------------------------------------------------------
# FaultPlan validation and transport wiring
# ----------------------------------------------------------------------
def test_fault_plan_validates_fields():
    with pytest.raises(ConfigurationError):
        FaultPlan(loss=1.5)
    with pytest.raises(ConfigurationError):
        FaultPlan(burst_exit=0.0)
    with pytest.raises(ConfigurationError):
        FaultPlan(partition_fraction=0.0)
    with pytest.raises(ConfigurationError):
        FaultPlan(partitions=((20.0, 10.0),))


def test_fault_plan_normalizes_json_lists():
    plan = FaultPlan(partitions=[[10, 20], [30, 40]])
    assert plan.partitions == ((10.0, 20.0), (30.0, 40.0))


def test_apply_fault_plan_attaches_injector_and_spikes():
    sim = Simulator(seed=1)
    transport = SimTransport(sim, latency=ConstantLatency(0.05))
    plan = FaultPlan(delay_spike=0.1, delay_spike_mean=1.0)
    injector = apply_fault_plan(transport, plan)
    assert transport.faults is injector
    assert isinstance(transport.latency, SpikeLatency)


def test_transport_counts_fault_losses_as_lost():
    sim = Simulator(seed=1)
    transport = SimTransport(sim, latency=ConstantLatency(0.01))
    apply_fault_plan(transport, FaultPlan(loss=0.5, duplicate=0.0))
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg))
    count = 500
    for _ in range(count):
        transport.send(1, 2, Ping())
    sim.run()
    assert len(got) + transport.lost == count
    assert transport.lost > 0
    counters = transport.network_counters()
    assert counters["fault_iid_lost"] == transport.lost


def test_transport_delivers_duplicate_copies():
    sim = Simulator(seed=1)
    transport = SimTransport(sim, latency=ConstantLatency(0.01))
    apply_fault_plan(transport, FaultPlan(loss=0.0, duplicate=0.9))
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg))
    count = 100
    for _ in range(count):
        transport.send(1, 2, Ping())
    sim.run()
    duplicated = transport.network_counters()["fault_duplicated"]
    assert duplicated > 0
    assert len(got) == count + duplicated
