"""Unit tests for the message transport."""

import pytest

from repro.errors import ConfigurationError
from repro.net import ConstantLatency, Message, SimTransport
from repro.sim import Simulator


class Ping(Message):
    SIZE_BYTES = 64
    __slots__ = ("tag",)

    def __init__(self, tag: str = "") -> None:
        self.tag = tag


def make_transport(delay=0.05):
    sim = Simulator(seed=1)
    transport = SimTransport(sim, latency=ConstantLatency(delay))
    return sim, transport


def test_send_delivers_after_latency():
    sim, transport = make_transport(0.05)
    got = []
    transport.register(2, lambda src, msg: got.append((sim.now, src, msg.tag)))
    transport.register(1, lambda src, msg: None)
    transport.send(1, 2, Ping("hello"))
    sim.run()
    assert got == [(0.05, 1, "hello")]


def test_send_records_traffic():
    sim, transport = make_transport()
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: None)
    transport.send(1, 2, Ping())
    transport.send(2, 1, Ping())
    sim.run()
    assert transport.monitor.bytes_by_type == {"Ping": 128}
    assert transport.monitor.count_by_type == {"Ping": 2}


def test_local_send_is_free_and_still_async():
    sim, transport = make_transport()
    got = []
    transport.register(1, lambda src, msg: got.append(sim.now))
    transport.send(1, 1, Ping())
    assert got == []  # not delivered synchronously
    sim.run()
    assert got == [0.0]
    assert transport.monitor.total_bytes == 0


def test_message_to_unregistered_node_is_dropped():
    sim, transport = make_transport()
    transport.register(1, lambda src, msg: None)
    transport.send(1, 99, Ping())
    sim.run()
    assert transport.dropped == 1


def test_unregister_drops_in_flight_messages():
    sim, transport = make_transport(0.05)
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg))
    transport.send(1, 2, Ping())
    transport.unregister(2)
    sim.run()
    assert got == []
    assert transport.dropped == 1


def test_double_register_raises():
    _, transport = make_transport()
    transport.register(1, lambda src, msg: None)
    with pytest.raises(ConfigurationError):
        transport.register(1, lambda src, msg: None)


def test_is_registered():
    _, transport = make_transport()
    transport.register(5, lambda src, msg: None)
    assert transport.is_registered(5)
    assert not transport.is_registered(6)
    transport.unregister(5)
    assert not transport.is_registered(5)


def test_unregister_unknown_node_is_noop():
    _, transport = make_transport()
    transport.unregister(123)  # must not raise


def test_drop_counter_distinguishes_unknown_from_detached():
    sim, transport = make_transport(0.05)
    transport.register(1, lambda src, msg: None)
    transport.send(1, 99, Ping())  # never-registered destination
    sim.run()
    assert transport.dropped_unknown == 1
    assert transport.dropped_detached == 0
    transport.register(2, lambda src, msg: None)
    transport.send(1, 2, Ping())
    transport.unregister(2)  # detaches with the message in flight
    sim.run()
    assert transport.dropped_detached == 1
    assert transport.dropped_unknown == 1
    assert transport.dropped == 2  # aggregate view stays consistent


def test_detach_with_multiple_in_flight_counts_each():
    sim, transport = make_transport(0.05)
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: None)
    for _ in range(3):
        transport.send(1, 2, Ping())
    transport.unregister(2)
    sim.run()
    assert transport.dropped_detached == 3
    assert transport.dropped_unknown == 0


def test_network_counters_snapshot():
    sim, transport = make_transport()
    transport.register(1, lambda src, msg: None)
    transport.send(1, 99, Ping())
    sim.run()
    assert transport.network_counters() == {
        "lost": 0,
        "dropped_detached": 0,
        "dropped_unknown": 1,
        "dropped_stale": 0,
    }


def test_messages_preserve_fifo_order_with_constant_latency():
    sim, transport = make_transport(0.01)
    got = []
    transport.register(2, lambda src, msg: got.append(msg.tag))
    transport.register(1, lambda src, msg: None)
    for tag in ("a", "b", "c"):
        transport.send(1, 2, Ping(tag))
    sim.run()
    assert got == ["a", "b", "c"]
