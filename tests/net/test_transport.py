"""Unit tests for the message transport."""

import pytest

from repro.errors import ConfigurationError
from repro.net import ConstantLatency, Message, Transport
from repro.sim import Simulator


class Ping(Message):
    SIZE_BYTES = 64
    __slots__ = ("tag",)

    def __init__(self, tag: str = "") -> None:
        self.tag = tag


def make_transport(delay=0.05):
    sim = Simulator(seed=1)
    transport = Transport(sim, latency=ConstantLatency(delay))
    return sim, transport


def test_send_delivers_after_latency():
    sim, transport = make_transport(0.05)
    got = []
    transport.register(2, lambda src, msg: got.append((sim.now, src, msg.tag)))
    transport.register(1, lambda src, msg: None)
    transport.send(1, 2, Ping("hello"))
    sim.run()
    assert got == [(0.05, 1, "hello")]


def test_send_records_traffic():
    sim, transport = make_transport()
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: None)
    transport.send(1, 2, Ping())
    transport.send(2, 1, Ping())
    sim.run()
    assert transport.monitor.bytes_by_type == {"Ping": 128}
    assert transport.monitor.count_by_type == {"Ping": 2}


def test_local_send_is_free_and_still_async():
    sim, transport = make_transport()
    got = []
    transport.register(1, lambda src, msg: got.append(sim.now))
    transport.send(1, 1, Ping())
    assert got == []  # not delivered synchronously
    sim.run()
    assert got == [0.0]
    assert transport.monitor.total_bytes == 0


def test_message_to_unregistered_node_is_dropped():
    sim, transport = make_transport()
    transport.register(1, lambda src, msg: None)
    transport.send(1, 99, Ping())
    sim.run()
    assert transport.dropped == 1


def test_unregister_drops_in_flight_messages():
    sim, transport = make_transport(0.05)
    got = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: got.append(msg))
    transport.send(1, 2, Ping())
    transport.unregister(2)
    sim.run()
    assert got == []
    assert transport.dropped == 1


def test_double_register_raises():
    _, transport = make_transport()
    transport.register(1, lambda src, msg: None)
    with pytest.raises(ConfigurationError):
        transport.register(1, lambda src, msg: None)


def test_is_registered():
    _, transport = make_transport()
    transport.register(5, lambda src, msg: None)
    assert transport.is_registered(5)
    assert not transport.is_registered(6)
    transport.unregister(5)
    assert not transport.is_registered(5)


def test_unregister_unknown_node_is_noop():
    _, transport = make_transport()
    transport.unregister(123)  # must not raise


def test_messages_preserve_fifo_order_with_constant_latency():
    sim, transport = make_transport(0.01)
    got = []
    transport.register(2, lambda src, msg: got.append(msg.tag))
    transport.register(1, lambda src, msg: None)
    for tag in ("a", "b", "c"):
        transport.send(1, 2, Ping(tag))
    sim.run()
    assert got == ["a", "b", "c"]
