"""End-to-end shape checks against the paper's claims (§V).

Absolute numbers differ from the paper (our substrate is a reimplemented
simulator and the grid is scaled down), but the qualitative results — who
wins, in which direction, roughly by how much — must reproduce.  These run
at small scale (60 nodes / 120 jobs, load shape preserved) with one seed;
summaries are cached across tests.
"""

import pytest

from repro.experiments import ScenarioScale
from repro.experiments.figures import scenario_summary
from repro.types import HOUR

SCALE = ScenarioScale.small()
SEEDS = (0,)


def summary(name):
    return scenario_summary(name, SCALE, SEEDS)


def mean_between(series, start, end):
    values = [v for t, v in series if start <= t <= end]
    assert values, "no samples in window"
    return sum(values) / len(values)


# ----------------------------------------------------------------------
# §V-A: scheduling policies (Figures 1-3)
# ----------------------------------------------------------------------
def test_rescheduling_reduces_completion_time_for_sjf_and_mixed():
    # Fig 1/2: "The iSJF and iMixed scenarios demonstrate the benefits of
    # dynamic rescheduling".
    assert (
        summary("iSJF").average_completion_time
        < summary("SJF").average_completion_time
    )
    assert (
        summary("iMixed").average_completion_time
        < summary("Mixed").average_completion_time
    )


def test_rescheduling_cuts_waiting_not_execution():
    # Fig 2: the reduction comes from the waiting share; execution time is
    # if anything slightly larger under rescheduling.
    mixed, imixed = summary("Mixed"), summary("iMixed")
    assert imixed.average_waiting_time < mixed.average_waiting_time
    assert imixed.average_execution_time == pytest.approx(
        mixed.average_execution_time, rel=0.25
    )


def test_all_jobs_eventually_complete():
    for name in ("FCFS", "SJF", "Mixed", "iFCFS", "iSJF", "iMixed"):
        s = summary(name)
        assert s.completed_jobs + s.unschedulable_jobs == SCALE.jobs
        assert s.unschedulable_jobs <= 0.05 * SCALE.jobs


def test_rescheduling_improves_load_fairness():
    # The paper's load-balancing claim, quantified: dynamic rescheduling
    # spreads the executed work more evenly over the nodes (Jain index).
    assert summary("iMixed").load_fairness > summary("Mixed").load_fairness
    assert summary("iSJF").load_fairness > summary("SJF").load_fairness


def test_rescheduling_reduces_idle_nodes_during_load():
    # Fig 3: "the number of idle nodes is reduced" in iSJF/iMixed.
    start, end = summary("Mixed").submission_window
    window_end = end + 2 * HOUR
    for name in ("SJF", "Mixed"):
        plain = mean_between(summary(name).idle_series, start, window_end)
        resched = mean_between(
            summary(f"i{name}").idle_series, start, window_end
        )
        assert resched < plain


def test_dynamic_scenarios_have_similar_utilization():
    # Fig 3: "all dynamic rescheduling scenarios have very similar behavior
    # as far as node utilization is concerned".
    start, end = summary("Mixed").submission_window
    means = [
        mean_between(summary(n).idle_series, start, end + 2 * HOUR)
        for n in ("iFCFS", "iSJF", "iMixed")
    ]
    assert max(means) - min(means) <= 0.15 * SCALE.nodes


# ----------------------------------------------------------------------
# §V-A: deadline scheduling (Figure 4)
# ----------------------------------------------------------------------
def test_rescheduling_reduces_missed_deadlines():
    # Fig 4: 187 -> 4 (Deadline) and 236 -> 59 (DeadlineH) at paper scale.
    assert (
        summary("iDeadline").missed_deadlines
        <= summary("Deadline").missed_deadlines
    )
    assert (
        summary("iDeadlineH").missed_deadlines
        < summary("DeadlineH").missed_deadlines
    )


def test_tighter_deadlines_miss_more():
    assert (
        summary("DeadlineH").missed_deadlines
        > summary("Deadline").missed_deadlines
    )


def test_rescheduling_reduces_missed_time():
    # Fig 4: "the average missed time (over failed deadlines) was halved".
    plain = summary("DeadlineH").average_missed_time
    resched = summary("iDeadlineH").average_missed_time
    if plain is not None and resched is not None:
        assert resched < plain


# ----------------------------------------------------------------------
# §V-B: scalability (Figures 5-7)
# ----------------------------------------------------------------------
def test_expanding_grid_uses_new_resources():
    # Fig 5: "dynamic rescheduling enables better usage of the newly
    # available resources, by reducing the number of idle nodes".
    start = SCALE.expanding_start
    end = SCALE.expanding_end + 2 * HOUR
    plain = mean_between(summary("Expanding").idle_series, start, end)
    resched = mean_between(summary("iExpanding").idle_series, start, end)
    assert resched < plain


def test_rescheduling_helps_at_every_load():
    # Fig 6: dynamic scenarios keep utilization higher in low and high load.
    for name in ("LowLoad", "HighLoad"):
        start, end = summary(name).submission_window
        plain = mean_between(summary(name).idle_series, start, end + 2 * HOUR)
        resched = mean_between(
            summary(f"i{name}").idle_series, start, end + 2 * HOUR
        )
        assert resched < plain


def test_ihighload_comparable_to_lowload():
    # Fig 7: "performance in the iHighLoad scenario is comparable to the
    # LowLoad one" despite 4x the submission rate.
    ihigh = summary("iHighLoad").average_completion_time
    low = summary("LowLoad").average_completion_time
    assert ihigh <= 1.5 * low


# ----------------------------------------------------------------------
# §V-C: rescheduling policies (Figure 8)
# ----------------------------------------------------------------------
def test_inform_variants_differ_only_minimally():
    # Fig 8: "minimal differences between the iInform1, iMixed, iInform4".
    times = [
        summary(n).average_completion_time
        for n in ("iInform1", "iMixed", "iInform4")
    ]
    assert max(times) <= 1.3 * min(times)


def test_thresholds_do_not_change_overall_performance():
    # Fig 8: "no particular variations in the overall performance".
    times = [
        summary(n).average_completion_time
        for n in ("iMixed", "iInform15m", "iInform30m")
    ]
    assert max(times) <= 1.3 * min(times)


# ----------------------------------------------------------------------
# §V-D: ERT accuracy (Figure 9)
# ----------------------------------------------------------------------
def test_ert_accuracy_results_are_homogeneous():
    # Fig 9: balanced errors produce homogeneous results; even the
    # optimistic estimation does not excessively worsen efficiency.
    times = [
        summary(n).average_completion_time
        for n in ("iPrecise", "iMixed", "iAccuracy25", "iAccuracyBad")
    ]
    assert max(times) <= 1.4 * min(times)


# ----------------------------------------------------------------------
# §V-E: traffic (Figure 10)
# ----------------------------------------------------------------------
def test_request_traffic_constant_across_static_scenarios():
    requests = [
        summary(n).traffic_bytes.get("Request", 0.0)
        for n in ("Mixed", "iMixed", "HighLoad", "iHighLoad")
    ]
    assert max(requests) <= 1.3 * min(requests)


def test_accept_and_assign_are_negligible():
    s = summary("iMixed")
    total = sum(s.traffic_bytes.values())
    small_part = s.traffic_bytes.get("Accept", 0) + s.traffic_bytes.get(
        "Assign", 0
    )
    assert small_part <= 0.05 * total


def test_inform_dominates_rescheduling_overhead():
    s = summary("iMixed")
    assert s.traffic_bytes["Inform"] > s.traffic_bytes["Request"]


def test_expanding_reduces_inform_broadcasts():
    # Fig 10: "the ability of starting job execution earlier on newly
    # available resources, hence reducing the number of candidate jobs for
    # rescheduling" — the direct observable is the number of INFORM
    # broadcasts initiated.  (Total INFORM *bytes* also shrink at paper
    # scale; at small scale the 40% larger overlay relays each flood
    # further, which partly cancels the byte reduction.)
    assert (
        summary("iExpanding").inform_broadcasts
        < summary("iMixed").inform_broadcasts
    )
    assert summary("iExpanding").traffic_bytes["Inform"] <= 1.25 * summary(
        "iMixed"
    ).traffic_bytes["Inform"]


def test_inform1_is_the_cheapest_rescheduling_variant():
    # Fig 10: iInform1 "generates significantly less traffic" while keeping
    # comparable completion times.
    one = summary("iInform1").traffic_bytes["Inform"]
    two = summary("iMixed").traffic_bytes["Inform"]
    four = summary("iInform4").traffic_bytes["Inform"]
    assert one < two <= four * 1.05
