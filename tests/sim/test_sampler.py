"""Unit tests for the periodic time-series sampler."""

from repro.sim import PeriodicSampler, Simulator


def test_sampler_collects_on_cadence():
    sim = Simulator()
    counter = {"v": 0}

    def bump():
        counter["v"] += 1

    sim.every(1.0, bump)
    sampler = PeriodicSampler(sim, lambda: counter["v"], interval=5.0, start=0.0)
    sim.run_until(12.0)
    # At t=5 the sample event (scheduled at t=0) precedes the t=5 bump
    # (scheduled at t=4), so the sampler sees the bumps from t=1..4 only.
    assert sampler.samples == [(0.0, 0.0), (5.0, 4.0), (10.0, 9.0)]


def test_sampler_until_bound():
    sim = Simulator()
    sampler = PeriodicSampler(sim, lambda: 1.0, interval=2.0, start=0.0, until=5.0)
    sim.run_until(20.0)
    assert sampler.times() == [0.0, 2.0, 4.0]


def test_sampler_stop():
    sim = Simulator()
    sampler = PeriodicSampler(sim, lambda: 1.0, interval=1.0, start=0.0)
    sim.call_at(2.5, sampler.stop)
    sim.run_until(10.0)
    assert sampler.times() == [0.0, 1.0, 2.0]


def test_values_and_times_accessors():
    sim = Simulator()
    sampler = PeriodicSampler(sim, lambda: sim.now * 2, interval=1.0, start=0.0)
    sim.run_until(2.0)
    assert sampler.times() == [0.0, 1.0, 2.0]
    assert sampler.values() == [0.0, 2.0, 4.0]


def test_default_start_is_current_time():
    sim = Simulator()
    sim.call_at(3.0, lambda: None)
    sim.run_until(3.0)
    sampler = PeriodicSampler(sim, lambda: 7.0, interval=1.0)
    sim.run_until(5.0)
    assert sampler.times() == [3.0, 4.0, 5.0]


def test_sampler_decimates_at_cap():
    sim = Simulator()
    sampler = PeriodicSampler(
        sim, lambda: sim.now, interval=1.0, start=0.0, max_samples=8
    )
    sim.run_until(100.0)
    # 101 probe ticks against a cap of 8: the series decimated down to a
    # power-of-two stride, stayed under the cap, and kept tick alignment.
    assert sampler.stride == 16
    assert len(sampler.samples) <= 8
    assert sampler.times() == [0.0, 16.0, 32.0, 48.0, 64.0, 80.0, 96.0]
    # Samples still carry the probe value from their own tick.
    assert all(time == value for time, value in sampler.samples)


def test_sampler_unbounded_when_cap_disabled():
    sim = Simulator()
    sampler = PeriodicSampler(
        sim, lambda: 1.0, interval=1.0, start=0.0, max_samples=0
    )
    sim.run_until(50.0)
    assert sampler.stride == 1
    assert len(sampler.samples) == 51


def test_sampler_default_cap_never_triggers_for_stock_scales():
    from repro.experiments import ScenarioScale
    from repro.experiments.scale import MAX_SAMPLES_PER_SERIES
    from repro.sim.sampler import DEFAULT_MAX_SAMPLES

    assert DEFAULT_MAX_SAMPLES > MAX_SAMPLES_PER_SERIES
    for factory in (
        ScenarioScale.tiny,
        ScenarioScale.small,
        ScenarioScale.medium,
        ScenarioScale.paper,
        ScenarioScale.large,
        ScenarioScale.huge,
    ):
        scale = factory()
        ticks = scale.duration / scale.sample_interval + 1
        assert ticks < DEFAULT_MAX_SAMPLES
