"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_call_at_runs_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(12.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [12.5]


def test_call_after_runs_relative_to_now():
    sim = Simulator()
    seen = []

    def first():
        sim.call_after(3.0, lambda: seen.append(sim.now))

    sim.call_at(10.0, first)
    sim.run()
    assert seen == [13.0]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.call_at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        Simulator().call_after(-1.0, lambda: None)


def test_run_until_stops_at_boundary_and_advances_clock():
    sim = Simulator()
    seen = []
    sim.call_at(5.0, lambda: seen.append("early"))
    sim.call_at(50.0, lambda: seen.append("late"))
    sim.run_until(20.0)
    assert seen == ["early"]
    assert sim.now == 20.0
    sim.run_until(100.0)
    assert seen == ["early", "late"]


def test_run_until_includes_events_exactly_at_end_time():
    sim = Simulator()
    seen = []
    sim.call_at(20.0, lambda: seen.append("edge"))
    sim.run_until(20.0)
    assert seen == ["edge"]


def test_run_until_in_the_past_raises():
    sim = Simulator()
    sim.call_at(30.0, lambda: None)
    sim.run_until(30.0)
    with pytest.raises(SimulationError):
        sim.run_until(10.0)


def test_cancel_prevents_execution():
    sim = Simulator()
    seen = []
    event = sim.call_at(1.0, lambda: seen.append("x"))
    sim.cancel(event)
    sim.run()
    assert seen == []
    assert sim.pending_events == 0


def test_double_cancel_is_noop():
    sim = Simulator()
    event = sim.call_at(1.0, lambda: None)
    sim.cancel(event)
    sim.cancel(event)
    assert sim.pending_events == 0


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, lambda: (seen.append(1), sim.stop()))
    sim.call_at(2.0, lambda: seen.append(2))
    sim.run()
    assert seen == [1]
    assert sim.pending_events == 1


def test_every_fires_periodically_until_bound():
    sim = Simulator()
    times = []
    sim.every(10.0, lambda: times.append(sim.now), start=5.0, until=40.0)
    sim.run_until(100.0)
    assert times == [5.0, 15.0, 25.0, 35.0]


def test_every_default_start_is_one_interval_from_now():
    sim = Simulator()
    times = []
    sim.every(2.0, lambda: times.append(sim.now))
    sim.run_until(7.0)
    assert times == [2.0, 4.0, 6.0]


def test_every_stop_function_halts_recurrence():
    sim = Simulator()
    times = []
    stop = sim.every(1.0, lambda: times.append(sim.now))
    sim.call_at(3.5, stop)
    sim.run_until(10.0)
    assert times == [1.0, 2.0, 3.0]


def test_every_rejects_non_positive_interval():
    with pytest.raises(SimulationError):
        Simulator().every(0.0, lambda: None)


def test_executed_events_counter():
    sim = Simulator()
    for t in (1.0, 2.0, 3.0):
        sim.call_at(t, lambda: None)
    sim.run()
    assert sim.executed_events == 3


def test_deterministic_event_ordering_same_time():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.call_at(1.0, order.append, label)
    sim.run()
    assert order == ["a", "b", "c"]


def test_priority_orders_same_time_events():
    sim = Simulator()
    order = []
    sim.call_at(1.0, order.append, "low", priority=5)
    sim.call_at(1.0, order.append, "high", priority=-5)
    sim.run()
    assert order == ["high", "low"]


# ----------------------------------------------------------------------
# call_at boundary semantics: scheduling exactly at `now`
# ----------------------------------------------------------------------


def test_call_at_now_is_allowed_before_running():
    sim = Simulator()
    seen = []
    sim.call_at(0.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [0.0]


def test_call_at_now_from_inside_event_runs_after_current_event():
    """An event scheduled at the current instant cannot preempt its scheduler."""
    sim = Simulator()
    order = []

    def outer():
        sim.call_at(sim.now, order.append, "inner")
        order.append("outer")

    sim.call_at(5.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 5.0


def test_call_at_now_interleaves_by_priority_then_insertion():
    """Same-instant events obey the full (time, priority, seq) tie-break."""
    sim = Simulator()
    order = []

    def outer():
        sim.call_at(sim.now, order.append, "late-insert")
        sim.call_at(sim.now, order.append, "high-priority", priority=-1)

    sim.call_at(1.0, outer)
    sim.call_at(1.0, order.append, "sibling")  # same time, scheduled earlier
    sim.run()
    # priority -1 beats both priority-0 events even though it was scheduled
    # last; among equal priorities the earlier seq ("sibling") wins.
    assert order == ["high-priority", "sibling", "late-insert"]


def test_call_at_now_during_run_until_end_time_still_executes():
    """A same-instant event scheduled at end_time runs before the clock stops."""
    sim = Simulator()
    seen = []
    sim.call_at(10.0, lambda: sim.call_at(10.0, seen.append, "edge"))
    sim.run_until(10.0)
    assert seen == ["edge"]
    assert sim.now == 10.0


def test_call_at_strictly_in_past_still_raises_from_inside_event():
    sim = Simulator()
    errors = []

    def handler():
        try:
            sim.call_at(sim.now - 0.001, lambda: None)
        except SimulationError as exc:
            errors.append(exc)

    sim.call_at(2.0, handler)
    sim.run()
    assert len(errors) == 1


def test_stop_during_run_until_preserves_pending_and_clock():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, lambda: (seen.append(1), sim.stop()))
    sim.call_at(2.0, lambda: seen.append(2))
    sim.run_until(5.0)
    assert seen == [1]
    assert sim.pending_events == 1
    assert sim.now == 5.0
    sim.run_until(5.0)
    assert seen == [1, 2]
