"""Unit tests for the slab event queue primitives.

Includes the determinism suite required for the slab rewrite: explicit
tie-breaking checks (time, then priority, then insertion order),
cancellation semantics, and a 10k-event fuzz comparing the queue's
execution order against a reference ``heapq`` of plain tuples.
"""

import heapq
import random

from repro.sim.events import ARGS, CALLBACK, EventQueue, is_cancelled


def test_push_pop_orders_by_time():
    q = EventQueue()
    order = []
    q.push(3.0, order.append, ("c",))
    q.push(1.0, order.append, ("a",))
    q.push(2.0, order.append, ("b",))
    while q:
        e = q.pop()
        e[CALLBACK](*e[ARGS])
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    q = EventQueue()
    first = q.push(5.0, lambda: None)
    second = q.push(5.0, lambda: None)
    assert q.pop() is first
    assert q.pop() is second


def test_priority_breaks_ties_before_sequence():
    q = EventQueue()
    late = q.push(5.0, lambda: None, priority=1)
    early = q.push(5.0, lambda: None, priority=0)
    assert q.pop() is early
    assert q.pop() is late


def test_time_dominates_priority_and_sequence():
    q = EventQueue()
    later = q.push(2.0, lambda: None, priority=-10)
    sooner = q.push(1.0, lambda: None, priority=10)
    assert q.pop() is sooner
    assert q.pop() is later


def test_len_counts_live_events():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    q.cancel(e1)
    assert len(q) == 1


def test_cancelled_events_are_skipped():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    e2 = q.push(2.0, lambda: None)
    q.cancel(e1)
    assert q.pop() is e2
    assert q.pop() is None


def test_cancel_returns_false_on_second_call():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    assert q.cancel(e) is True
    assert q.cancel(e) is False
    assert len(q) == 0


def test_cancel_releases_args_reference():
    q = EventQueue()
    payload = object()
    e = q.push(1.0, lambda _: None, (payload,))
    q.cancel(e)
    assert e[ARGS] == ()
    assert is_cancelled(e)


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(7.0, lambda: None)
    q.cancel(e1)
    assert q.peek_time() == 7.0


def test_peek_time_empty_queue():
    assert EventQueue().peek_time() is None


def test_pop_empty_queue_returns_none():
    assert EventQueue().pop() is None


def test_is_cancelled_reflects_state():
    q = EventQueue()
    e = q.push(1.0, print)
    assert not is_cancelled(e)
    q.cancel(e)
    assert is_cancelled(e)


def test_bool_reflects_liveness():
    q = EventQueue()
    assert not q
    e = q.push(1.0, lambda: None)
    assert q
    q.cancel(e)
    assert not q


def test_fuzz_10k_events_match_reference_heap():
    """10k random pushes/cancels drain in exactly the reference order.

    The reference is an independent ``heapq`` of ``(time, priority, seq)``
    tuples with a cancellation set — the textbook implementation the slab
    queue must be indistinguishable from.
    """
    rng = random.Random(0xA51A)
    q = EventQueue()
    reference = []
    handles = []  # (seq, slab entry) pairs still cancellable
    cancelled = set()
    executed = []
    expected = []

    for seq in range(10_000):
        time = rng.choice([rng.uniform(0, 100), float(rng.randrange(0, 20))])
        priority = rng.randrange(-2, 3)
        entry = q.push(time, executed.append, (seq,), priority=priority)
        heapq.heappush(reference, (time, priority, seq))
        handles.append((seq, entry))
        if handles and rng.random() < 0.25:
            victim_seq, victim = handles.pop(rng.randrange(len(handles)))
            if q.cancel(victim):
                cancelled.add(victim_seq)

    while reference:
        _, _, seq = heapq.heappop(reference)
        if seq not in cancelled:
            expected.append(seq)
    while q:
        e = q.pop()
        e[CALLBACK](*e[ARGS])

    assert executed == expected
