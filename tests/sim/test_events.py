"""Unit tests for the event queue primitives."""

from repro.sim.events import Event, EventQueue


def test_push_pop_orders_by_time():
    q = EventQueue()
    order = []
    q.push(3.0, order.append, ("c",))
    q.push(1.0, order.append, ("a",))
    q.push(2.0, order.append, ("b",))
    while q:
        e = q.pop()
        e.callback(*e.args)
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    q = EventQueue()
    first = q.push(5.0, lambda: None)
    second = q.push(5.0, lambda: None)
    assert q.pop() is first
    assert q.pop() is second


def test_priority_breaks_ties_before_sequence():
    q = EventQueue()
    late = q.push(5.0, lambda: None, priority=1)
    early = q.push(5.0, lambda: None, priority=0)
    assert q.pop() is early
    assert q.pop() is late


def test_len_counts_live_events():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    e1.cancel()
    q.notify_cancelled()
    assert len(q) == 1


def test_cancelled_events_are_skipped():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    e2 = q.push(2.0, lambda: None)
    e1.cancel()
    q.notify_cancelled()
    assert q.pop() is e2
    assert q.pop() is None


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(7.0, lambda: None)
    e1.cancel()
    q.notify_cancelled()
    assert q.peek_time() == 7.0


def test_peek_time_empty_queue():
    assert EventQueue().peek_time() is None


def test_pop_empty_queue_returns_none():
    assert EventQueue().pop() is None


def test_event_repr_mentions_cancelled_state():
    e = Event(1.0, 0, print)
    assert "cancelled" not in repr(e)
    e.cancel()
    assert "cancelled" in repr(e)


def test_bool_reflects_liveness():
    q = EventQueue()
    assert not q
    e = q.push(1.0, lambda: None)
    assert q
    e.cancel()
    q.notify_cancelled()
    assert not q
