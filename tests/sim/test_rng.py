"""Unit tests for named random streams."""

from repro.sim.rng import RandomStreams, derive_seed


def test_same_name_returns_same_stream_object():
    streams = RandomStreams(1)
    assert streams.get("workload") is streams.get("workload")


def test_getitem_is_alias_for_get():
    streams = RandomStreams(1)
    assert streams["overlay"] is streams.get("overlay")


def test_streams_are_deterministic_per_seed():
    a = RandomStreams(42).get("workload").random()
    b = RandomStreams(42).get("workload").random()
    assert a == b


def test_different_names_give_independent_draws():
    streams = RandomStreams(42)
    assert streams["a"].random() != streams["b"].random()


def test_different_seeds_differ():
    a = RandomStreams(1).get("x").random()
    b = RandomStreams(2).get("x").random()
    assert a != b


def test_nearby_seeds_are_decorrelated():
    # Adjacent master seeds (run 0, run 1, ...) must give unrelated streams.
    draws = [RandomStreams(seed).get("workload").random() for seed in range(20)]
    assert len(set(draws)) == 20


def test_derive_seed_is_stable():
    assert derive_seed(7, "net") == derive_seed(7, "net")
    assert derive_seed(7, "net") != derive_seed(7, "overlay")


def test_names_lists_created_streams_sorted():
    streams = RandomStreams(0)
    streams.get("zeta")
    streams.get("alpha")
    assert streams.names() == ("alpha", "zeta")
