"""Unit tests for random profile generation (paper §IV-B distributions)."""

import random
from collections import Counter

from repro.grid import (
    ARCHITECTURE_DISTRIBUTION,
    OS_DISTRIBUTION,
    Architecture,
    OperatingSystem,
    random_job_requirements,
    random_node_profile,
    random_performance_index,
    weighted_choice,
)
from repro.grid.profiles import CAPACITY_CHOICES


def test_distributions_sum_to_one():
    assert abs(sum(w for _, w in ARCHITECTURE_DISTRIBUTION) - 1.0) < 1e-9
    assert abs(sum(w for _, w in OS_DISTRIBUTION) - 1.0) < 1e-9


def test_weighted_choice_respects_weights():
    rng = random.Random(0)
    counts = Counter(
        weighted_choice((("a", 0.9), ("b", 0.1)), rng) for _ in range(5000)
    )
    assert 0.85 < counts["a"] / 5000 < 0.95


def test_weighted_choice_handles_unnormalized_weights():
    rng = random.Random(1)
    counts = Counter(
        weighted_choice((("a", 9.0), ("b", 1.0)), rng) for _ in range(5000)
    )
    assert 0.85 < counts["a"] / 5000 < 0.95


def test_node_profiles_follow_top500_shares():
    rng = random.Random(2)
    profiles = [random_node_profile(rng) for _ in range(5000)]
    arch_share = sum(
        p.architecture is Architecture.AMD64 for p in profiles
    ) / len(profiles)
    os_share = sum(p.os is OperatingSystem.LINUX for p in profiles) / len(profiles)
    assert 0.84 < arch_share < 0.90  # paper: 87.2%
    assert 0.86 < os_share < 0.92  # paper: 88.6%


def test_capacities_come_from_paper_choices():
    rng = random.Random(3)
    for _ in range(200):
        profile = random_node_profile(rng)
        assert profile.memory_gb in CAPACITY_CHOICES
        assert profile.disk_gb in CAPACITY_CHOICES


def test_job_requirements_use_same_distributions():
    rng = random.Random(4)
    reqs = [random_job_requirements(rng) for _ in range(5000)]
    share = sum(r.architecture is Architecture.AMD64 for r in reqs) / len(reqs)
    assert 0.84 < share < 0.90
    assert all(r.memory_gb in CAPACITY_CHOICES for r in reqs[:100])


def test_performance_index_range_and_spread():
    rng = random.Random(5)
    draws = [random_performance_index(rng) for _ in range(2000)]
    assert all(1.0 <= p <= 2.0 for p in draws)
    mean = sum(draws) / len(draws)
    assert 1.45 < mean < 1.55  # uniform over [1, 2]


def test_generation_is_deterministic_per_seed():
    a = random_node_profile(random.Random(9))
    b = random_node_profile(random.Random(9))
    assert a == b
