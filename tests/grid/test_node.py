"""Unit tests for the grid node executor and its invariants."""

import pytest

from repro.errors import SchedulingError
from repro.grid import AccuracyModel, Architecture, NodeProfile, OperatingSystem
from repro.scheduling import SJFScheduler
from repro.types import HOUR

from ..helpers import make_job, make_node


def test_accept_starts_execution_immediately_when_idle():
    sim, node = make_node()
    job = make_job(1, ert=HOUR)
    node.accept_job(job)
    assert node.running is not None
    assert node.running.job is job
    assert node.queue_length == 0


def test_one_job_at_a_time():
    sim, node = make_node()
    node.accept_job(make_job(1, ert=HOUR))
    node.accept_job(make_job(2, ert=HOUR))
    assert node.running.job.job_id == 1
    assert node.queue_length == 1


def test_completion_starts_next_job_and_counts():
    sim, node = make_node()
    node.accept_job(make_job(1, ert=HOUR))
    node.accept_job(make_job(2, ert=2 * HOUR))
    sim.run_until(HOUR)
    assert node.completed_jobs == 1
    assert node.running.job.job_id == 2
    sim.run_until(3 * HOUR)
    assert node.completed_jobs == 2
    assert node.is_idle


def test_precise_accuracy_finishes_exactly_at_ertp():
    sim, node = make_node(performance_index=2.0)
    node.accept_job(make_job(1, ert=HOUR))
    sim.run_until(HOUR / 2 - 1)
    assert node.running is not None
    sim.run_until(HOUR / 2)
    assert node.running is None


def test_cannot_accept_unmatching_job():
    profile = NodeProfile(
        architecture=Architecture.POWER,
        memory_gb=8,
        disk_gb=8,
        os=OperatingSystem.LINUX,
    )
    sim, node = make_node(profile=profile)
    with pytest.raises(SchedulingError):
        node.accept_job(make_job(1))


def test_withdraw_waiting_job():
    sim, node = make_node()
    node.accept_job(make_job(1, ert=HOUR))
    node.accept_job(make_job(2, ert=HOUR))
    entry = node.withdraw_job(2)
    assert entry is not None
    assert entry.job.job_id == 2
    assert node.queue_length == 0
    assert not node.holds_job(2)


def test_withdraw_running_job_is_refused():
    sim, node = make_node()
    node.accept_job(make_job(1, ert=HOUR))
    assert node.withdraw_job(1) is None
    assert node.holds_job(1)


def test_withdraw_unknown_job_returns_none():
    sim, node = make_node()
    assert node.withdraw_job(42) is None


def test_started_job_runs_to_completion_even_if_late_offers_arrive():
    # no preemption: once running, the job finishes on this node
    sim, node = make_node()
    node.accept_job(make_job(1, ert=HOUR))
    sim.run_until(HOUR / 2)
    assert node.withdraw_job(1) is None
    sim.run_until(HOUR)
    assert node.completed_jobs == 1


def test_callbacks_fire_with_running_info():
    sim, node = make_node()
    events = []
    node.on_job_started.append(lambda n, r: events.append(("start", sim.now, r.job.job_id)))
    node.on_job_finished.append(lambda n, r: events.append(("finish", sim.now, r.job.job_id)))
    node.accept_job(make_job(1, ert=HOUR))
    sim.run_until(2 * HOUR)
    assert events == [("start", 0.0, 1), ("finish", HOUR, 1)]


def test_running_remaining_uses_ertp_estimate():
    sim, node = make_node(performance_index=2.0, accuracy=AccuracyModel(epsilon=0.0))
    node.accept_job(make_job(1, ert=2 * HOUR))  # ERTp = 1h
    sim.call_at(HOUR / 2, lambda: None)
    sim.run_until(HOUR / 2)
    assert node.running_remaining() == pytest.approx(HOUR / 2)


def test_running_remaining_zero_when_idle():
    _, node = make_node()
    assert node.running_remaining() == 0.0


def test_cost_for_fcfs_accumulates_queue():
    sim, node = make_node()
    node.accept_job(make_job(1, ert=HOUR))      # running, remaining 1h
    node.accept_job(make_job(2, ert=2 * HOUR))  # queued
    cost = node.cost_for(make_job(3, ert=HOUR))
    assert cost == pytest.approx(4 * HOUR)  # 1h remaining + 2h + 1h


def test_executor_respects_scheduler_order():
    sim, node = make_node(scheduler=SJFScheduler())
    node.accept_job(make_job(1, ert=3 * HOUR))  # starts immediately
    node.accept_job(make_job(2, ert=2 * HOUR))
    node.accept_job(make_job(3, ert=1 * HOUR))
    order = []
    node.on_job_started.append(lambda n, r: order.append(r.job.job_id))
    sim.run_until(10 * HOUR)
    assert order == [3, 2]  # shortest first among the waiting jobs


def test_is_idle_reflects_running_and_queue():
    sim, node = make_node()
    assert node.is_idle
    node.accept_job(make_job(1, ert=HOUR))
    assert not node.is_idle
    sim.run_until(HOUR)
    assert node.is_idle
