"""Unit tests for the ERT/ERTp/ART pipeline."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.grid import (
    ACCURACY_25,
    ACCURACY_BAD,
    BASELINE_10,
    PRECISE,
    AccuracyModel,
    scaled_ert,
)
from repro.types import HOUR


def test_scaled_ert_divides_by_index():
    assert scaled_ert(2 * HOUR, 2.0) == HOUR
    assert scaled_ert(HOUR, 1.0) == HOUR


def test_scaled_ert_validation():
    with pytest.raises(ConfigurationError):
        scaled_ert(0.0, 1.5)
    with pytest.raises(ConfigurationError):
        scaled_ert(HOUR, 0.5)


def test_precise_model_returns_ertp_exactly():
    rng = random.Random(0)
    assert PRECISE.actual_running_time(HOUR, HOUR / 1.5, rng) == HOUR / 1.5


def test_baseline_drift_is_bounded_by_epsilon_times_ert():
    rng = random.Random(1)
    ert, ertp = HOUR, HOUR / 1.3
    for _ in range(500):
        art = BASELINE_10.actual_running_time(ert, ertp, rng)
        assert abs(art - ertp) <= 0.1 * ert + 1e-9


def test_accuracy25_has_wider_drift():
    rng = random.Random(2)
    ert, ertp = HOUR, HOUR
    drifts = [
        abs(ACCURACY_25.actual_running_time(ert, ertp, rng) - ertp)
        for _ in range(500)
    ]
    assert max(drifts) > 0.1 * ert  # beyond the ±10% envelope
    assert max(drifts) <= 0.25 * ert + 1e-9


def test_accuracy_bad_is_always_optimistic():
    rng = random.Random(3)
    ert, ertp = HOUR, HOUR / 1.8
    for _ in range(500):
        art = ACCURACY_BAD.actual_running_time(ert, ertp, rng)
        assert art >= ertp


def test_drift_scales_with_ert_not_ertp():
    # The paper defines drift = U[-1,1] * ERT * eps: a fast node (small
    # ERTp) still sees drift proportional to the baseline ERT.
    rng = random.Random(4)
    ert = 4 * HOUR
    ertp = ert / 2.0
    drifts = [
        abs(BASELINE_10.actual_running_time(ert, ertp, rng) - ertp)
        for _ in range(500)
    ]
    assert max(drifts) > 0.1 * ertp  # exceeds what ERTp-scaling would allow


def test_art_never_non_positive():
    rng = random.Random(5)
    model = AccuracyModel(epsilon=0.9)
    for _ in range(500):
        art = model.actual_running_time(100.0, 10.0, rng)
        assert art > 0


def test_negative_epsilon_rejected():
    with pytest.raises(ConfigurationError):
        AccuracyModel(epsilon=-0.1)
