"""Unit tests for the slab-backed aggregate grid state."""

import pytest

from repro.grid.state import GridState, IncarnationSlab


def test_register_starts_live_and_idle():
    state = GridState()
    state.register(0)
    state.register(1)
    assert state.live_count == 2
    assert state.idle_live_count == 2
    assert state.is_live(0) and state.is_idle(1)
    assert len(state) == 2


def test_idle_counts_only_live_slots():
    state = GridState()
    for node in range(4):
        state.register(node)
    state.set_idle(1, False)
    assert state.idle_live_count == 3
    state.set_live(1, False)  # busy node crashes: idle count unchanged
    assert state.idle_live_count == 3
    assert state.live_count == 3
    state.set_idle(1, True)  # crash empties its queue while dead
    assert state.idle_live_count == 3  # still not live, still not counted
    state.set_live(1, True)  # restart rejoins idle
    assert state.idle_live_count == 4
    assert state.live_count == 4


def test_set_idle_is_idempotent():
    state = GridState()
    state.register(0)
    state.set_idle(0, True)
    state.set_idle(0, True)
    assert state.idle_live_count == 1
    state.set_idle(0, False)
    state.set_idle(0, False)
    assert state.idle_live_count == 0


def test_membership_version_tracks_live_transitions():
    state = GridState()
    state.register(5)  # sparse id: slots 0..5 exist, only 5 live
    version = state.membership_version
    state.set_idle(5, False)  # idle flips do not invalidate membership
    assert state.membership_version == version
    state.set_live(5, False)
    assert state.membership_version == version + 1
    state.set_live(5, False)  # no-op transition: no bump
    assert state.membership_version == version + 1
    assert state.live_count == 0


def test_incarnation_slab_is_dict_shaped():
    slab = IncarnationSlab()
    assert slab.get(7, 0) == 0
    assert slab.get(7) == 0
    slab[7] = 3
    slab[2] = 1
    assert slab.get(7) == 3
    assert slab.get(2) == 1
    assert slab.get(100) == 0
    assert len(slab) == 2  # counts bumped nodes, like the dict it replaces


def test_incarnation_slab_rejects_nothing_in_range():
    slab = IncarnationSlab()
    for node in (0, 10, 5):
        slab[node] = node + 1
    assert [slab.get(n) for n in (0, 5, 10)] == [1, 6, 11]
