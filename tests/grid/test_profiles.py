"""Unit tests for node profiles and matching logic."""

import pytest

from repro.errors import ConfigurationError
from repro.grid import Architecture, JobRequirements, NodeProfile, OperatingSystem


def node(arch=Architecture.AMD64, mem=8, disk=8, os=OperatingSystem.LINUX):
    return NodeProfile(architecture=arch, memory_gb=mem, disk_gb=disk, os=os)


def reqs(arch=Architecture.AMD64, mem=4, disk=4, os=OperatingSystem.LINUX):
    return JobRequirements(architecture=arch, memory_gb=mem, disk_gb=disk, os=os)


def test_matching_profile_satisfies():
    assert node().satisfies(reqs())


def test_exact_capacity_satisfies():
    assert node(mem=4, disk=4).satisfies(reqs(mem=4, disk=4))


def test_insufficient_memory_fails():
    assert not node(mem=2).satisfies(reqs(mem=4))


def test_insufficient_disk_fails():
    assert not node(disk=2).satisfies(reqs(disk=4))


def test_architecture_mismatch_fails():
    assert not node(arch=Architecture.POWER).satisfies(reqs())


def test_os_mismatch_fails():
    assert not node(os=OperatingSystem.SOLARIS).satisfies(reqs())


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        node(mem=0)
    with pytest.raises(ConfigurationError):
        node(disk=-1)
    with pytest.raises(ConfigurationError):
        reqs(mem=0)


def test_profiles_are_hashable_and_frozen():
    a = node()
    b = node()
    assert a == b
    assert hash(a) == hash(b)
    with pytest.raises(AttributeError):
        a.memory_gb = 16
