"""Statistical significance of the paper's headline claims.

Beyond direction checks (tests/test_paper_claims.py), the central effects
must survive a *paired* t-test across seeds: runs sharing a seed share
node profiles and workload, so per-seed differences isolate the scenario
effect.  Small scale, 4 seeds.
"""

import pytest

from repro.experiments import ScenarioScale
from repro.experiments.compare import compare_scenarios

SMALL = ScenarioScale.small()
SEEDS = (0, 1, 2, 3)


def test_rescheduling_cuts_waiting_time_significantly():
    result = compare_scenarios(
        "iMixed", "Mixed", "waiting_time", SMALL, seeds=SEEDS, paired=True
    )
    assert result.mean_a < result.mean_b
    assert result.paired and result.exact
    assert result.p_value < 0.05


def test_rescheduling_improves_fairness_significantly():
    result = compare_scenarios(
        "iMixed", "Mixed", "load_fairness", SMALL, seeds=SEEDS, paired=True
    )
    assert result.mean_a > result.mean_b
    assert result.p_value < 0.05


def test_load_effect_is_significant():
    result = compare_scenarios(
        "HighLoad", "LowLoad", "waiting_time", SMALL, seeds=SEEDS, paired=True
    )
    assert result.mean_a > result.mean_b
    assert result.significant
