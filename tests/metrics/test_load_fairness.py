"""Unit tests for the Jain load-fairness metric."""

import pytest

from repro.metrics import GridMetrics
from repro.types import HOUR

from ..helpers import make_job


def completed_job(metrics, jid, node, execution=HOUR):
    metrics.job_submitted(make_job(jid, ert=execution), 0, 0.0)
    metrics.job_assigned(jid, node, 0.0, reschedule=False)
    metrics.job_started(jid, node, 0.0)
    metrics.job_finished(jid, node, execution)


def test_busy_time_accumulates_per_node():
    m = GridMetrics()
    completed_job(m, 1, node=5, execution=HOUR)
    completed_job(m, 2, node=5, execution=2 * HOUR)
    completed_job(m, 3, node=7, execution=HOUR)
    assert m.busy_time_by_node() == {5: 3 * HOUR, 7: HOUR}


def test_perfectly_even_load_scores_one():
    m = GridMetrics()
    for jid, node in enumerate([0, 1, 2, 3], start=1):
        completed_job(m, jid, node)
    assert m.load_fairness(node_count=4) == pytest.approx(1.0)


def test_all_on_one_node_scores_inverse_node_count():
    m = GridMetrics()
    for jid in (1, 2, 3):
        completed_job(m, jid, node=0)
    assert m.load_fairness(node_count=10) == pytest.approx(0.1)


def test_fairness_accounts_for_idle_nodes():
    m = GridMetrics()
    completed_job(m, 1, node=0)
    completed_job(m, 2, node=1)
    # Same busy profile, larger grid => lower fairness.
    assert m.load_fairness(node_count=2) > m.load_fairness(node_count=8)


def test_no_work_means_no_index():
    assert GridMetrics().load_fairness(node_count=5) is None
    assert GridMetrics().load_fairness(node_count=0) is None


def test_summary_carries_fairness():
    from repro.experiments import (
        ScenarioScale,
        get_scenario,
        run,
        summarize_runs,
    )

    runs = [run(get_scenario("Mixed"), ScenarioScale.tiny(), seed=1)]
    summary = summarize_runs(runs)
    assert summary.load_fairness is not None
    assert 0 < summary.load_fairness <= 1.0
