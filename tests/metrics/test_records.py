"""Unit tests for per-job lifecycle records."""

from repro.metrics import JobRecord
from repro.types import HOUR

from ..helpers import make_job


def record(job=None):
    return JobRecord(
        job=job if job is not None else make_job(1, ert=HOUR),
        initiator=0,
        submit_time=100.0,
    )


def test_fresh_record_has_no_derived_metrics():
    r = record()
    assert not r.completed
    assert r.waiting_time is None
    assert r.execution_time is None
    assert r.completion_time is None
    assert r.missed_deadline is None
    assert r.lateness is None
    assert r.missed_time is None
    assert r.reschedule_count == 0
    assert r.resubmissions == 0


def test_reschedule_count_is_assignments_minus_one():
    r = record()
    assert r.reschedule_count == 0
    r.assignments.append((100.0, 1))
    assert r.reschedule_count == 0
    r.assignments.append((200.0, 2))
    r.assignments.append((300.0, 3))
    assert r.reschedule_count == 2


def test_time_decomposition():
    r = record()
    r.start_time = 400.0
    r.start_node = 2
    r.finish_time = 1000.0
    assert r.waiting_time == 300.0
    assert r.execution_time == 600.0
    assert r.completion_time == 900.0
    assert r.completed


def test_deadline_metrics_met():
    r = record(make_job(1, ert=HOUR, deadline=2000.0, submit_time=100.0))
    r.start_time = 200.0
    r.finish_time = 1500.0
    assert r.missed_deadline is False
    assert r.lateness == 500.0
    assert r.missed_time is None


def test_deadline_metrics_missed():
    r = record(make_job(1, ert=HOUR, deadline=2000.0, submit_time=100.0))
    r.start_time = 200.0
    r.finish_time = 2600.0
    assert r.missed_deadline is True
    assert r.lateness == -600.0
    assert r.missed_time == 600.0


def test_batch_job_has_no_deadline_metrics_even_when_done():
    r = record()
    r.start_time = 200.0
    r.finish_time = 2600.0
    assert r.missed_deadline is None
    assert r.missed_time is None
