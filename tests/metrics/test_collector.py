"""Unit tests for the grid metrics hub."""

import pytest

from repro.errors import ReproError
from repro.metrics import GridMetrics
from repro.types import HOUR

from ..helpers import make_job


def test_full_lifecycle_flow():
    m = GridMetrics()
    job = make_job(1, ert=HOUR, submit_time=0.0)
    m.job_submitted(job, initiator=3, time=0.0)
    m.job_assigned(1, node=5, time=2.0, reschedule=False)
    m.job_assigned(1, node=7, time=50.0, reschedule=True)
    m.job_started(1, node=7, time=100.0)
    m.job_finished(1, node=7, time=100.0 + HOUR)
    record = m.records[1]
    assert record.initiator == 3
    assert record.assignments == [(2.0, 5), (50.0, 7)]
    assert record.start_node == 7
    assert m.completed_jobs == 1
    assert m.reschedules == 1
    assert m.average_completion_time() == pytest.approx(100.0 + HOUR)
    assert m.average_waiting_time() == pytest.approx(100.0)
    assert m.average_execution_time() == pytest.approx(HOUR)
    assert m.average_reschedules() == 1.0


def test_double_submission_rejected():
    m = GridMetrics()
    job = make_job(1)
    m.job_submitted(job, 0, 0.0)
    with pytest.raises(ReproError):
        m.job_submitted(job, 0, 1.0)


def test_events_for_unknown_job_rejected():
    m = GridMetrics()
    with pytest.raises(ReproError):
        m.job_started(42, 0, 0.0)
    with pytest.raises(ReproError):
        m.job_finished(42, 0, 0.0)
    with pytest.raises(ReproError):
        m.job_assigned(42, 0, 0.0, reschedule=False)


def test_empty_hub_aggregates_to_none():
    m = GridMetrics()
    assert m.average_completion_time() is None
    assert m.average_waiting_time() is None
    assert m.average_execution_time() is None
    assert m.average_reschedules() is None
    assert m.average_lateness() is None
    assert m.average_missed_time() is None
    assert m.missed_deadline_count() == 0
    assert m.unschedulable_count() == 0
    assert m.completed_records() == []


def test_unschedulable_counting():
    m = GridMetrics()
    m.job_submitted(make_job(1), 0, 0.0)
    m.job_submitted(make_job(2), 0, 1.0)
    m.job_unschedulable(1, 10.0)
    assert m.unschedulable_count() == 1
    assert m.records[1].unschedulable
    assert not m.records[2].unschedulable


def test_resubmission_counting():
    m = GridMetrics()
    m.job_submitted(make_job(1), 0, 0.0)
    m.job_resubmitted(1, 500.0)
    m.job_resubmitted(1, 900.0)
    assert m.records[1].resubmissions == 2


def test_deadline_aggregates_split_met_and_missed():
    m = GridMetrics()
    # job 1 meets its deadline with 1h to spare; job 2 misses by 30 min.
    for jid, deadline, finish in (
        (1, 5 * HOUR, 4 * HOUR),
        (2, 5 * HOUR, 5.5 * HOUR),
    ):
        m.job_submitted(
            make_job(jid, ert=HOUR, deadline=deadline), 0, 0.0
        )
        m.job_assigned(jid, 1, 0.0, reschedule=False)
        m.job_started(jid, 1, finish - HOUR)
        m.job_finished(jid, 1, finish)
    assert m.missed_deadline_count() == 1
    assert m.average_lateness() == pytest.approx(HOUR)
    assert m.average_missed_time() == pytest.approx(HOUR / 2)


def test_incomplete_jobs_excluded_from_averages():
    m = GridMetrics()
    m.job_submitted(make_job(1, ert=HOUR), 0, 0.0)
    m.job_assigned(1, 1, 0.0, reschedule=False)
    m.job_started(1, 1, 10.0)  # never finishes
    assert m.average_completion_time() is None
    assert m.average_waiting_time() is None
    # execution time is undefined until completion
    assert m.average_execution_time() is None


def test_duplicate_execution_counted_not_double_booked():
    m = GridMetrics()
    m.job_submitted(make_job(1, ert=HOUR), 0, 0.0)
    m.job_assigned(1, 1, 0.0, reschedule=False)
    m.job_started(1, 1, 0.0)
    m.job_finished(1, 1, HOUR)
    # An at-least-once resubmission race completes the same job again.
    m.job_finished(1, 2, 2 * HOUR)
    assert m.duplicate_executions == 1
    assert m.completed_jobs == 1
    assert m.records[1].finish_time == pytest.approx(HOUR)
    assert m.average_completion_time() == pytest.approx(HOUR)


def test_counters_surface_through_the_shared_registry():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    m = GridMetrics(registry)
    m.job_submitted(make_job(1, ert=HOUR), 0, 0.0)
    m.job_assigned(1, 1, 0.0, reschedule=False)
    m.job_assigned(1, 2, 10.0, reschedule=True)
    m.job_started(1, 2, 10.0)
    m.job_finished(1, 2, 10.0 + HOUR)
    m.informs_advertised(3)
    snapshot = registry.snapshot()
    assert snapshot["jobs.completed"] == 1.0
    assert snapshot["jobs.reschedules"] == 1.0
    assert snapshot["informs.advertised"] == 3.0
    assert snapshot["job.completion_time.count"] == 1.0
    assert snapshot["job.completion_time.sum"] == pytest.approx(10.0 + HOUR)


def test_empty_run_registry_snapshot_is_safe():
    registry_backed = GridMetrics()
    snapshot = registry_backed.registry.snapshot()
    # No observations: counts are zero and no min/max keys divide by zero.
    assert snapshot["jobs.completed"] == 0.0
    assert snapshot["job.completion_time.count"] == 0.0
    assert "job.completion_time.min" not in snapshot
    assert registry_backed.average_completion_time() is None
