"""Documentation consistency checks."""

import importlib
import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def read(name):
    return (ROOT / name).read_text()


def test_required_documents_exist():
    for name in (
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "docs/PROTOCOL.md",
        "docs/SIMULATION.md",
        "docs/API.md",
        "docs/PERFORMANCE.md",
    ):
        assert (ROOT / name).exists(), name


def test_readme_architecture_modules_exist():
    text = read("README.md")
    for module in re.findall(r"^repro\.(\w+)", text, flags=re.MULTILINE):
        importlib.import_module(f"repro.{module}")


def test_design_lists_every_figure_benchmark():
    text = read("DESIGN.md")
    bench_dir = ROOT / "benchmarks"
    for fig in range(1, 11):
        assert f"fig{fig}" in text
    for bench in bench_dir.glob("bench_fig*.py"):
        assert bench.name in text, bench.name


def test_experiments_covers_every_figure():
    text = read("EXPERIMENTS.md")
    for fig in range(1, 11):
        assert f"Figure {fig}" in text, f"Figure {fig} missing"


def test_examples_documented_in_readme():
    text = read("README.md")
    for example in (ROOT / "examples").glob("*.py"):
        assert example.name in text, example.name


def test_scenarios_in_design_match_catalog():
    from repro.experiments import SCENARIOS

    design = read("DESIGN.md")
    # The per-experiment index must reference the headline scenarios.
    for name in ("iMixed", "iDeadline", "iExpanding", "iInform1"):
        assert name in design
    assert len(SCENARIOS) == 26
