"""Unit tests for submission schedules and the submission process."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.types import MINUTE
from repro.workload import JobGenerator, SubmissionProcess, SubmissionSchedule


def test_schedule_times_match_paper_baseline():
    # 1000 jobs every 10 s from 20 min: last submission at 3h06m50s.
    schedule = SubmissionSchedule()
    times = schedule.times()
    assert len(times) == 1000
    assert times[0] == 20 * MINUTE
    assert times[1] - times[0] == 10.0
    assert schedule.end == 20 * MINUTE + 999 * 10.0


def test_schedule_validation():
    with pytest.raises(ConfigurationError):
        SubmissionSchedule(job_count=0)
    with pytest.raises(ConfigurationError):
        SubmissionSchedule(interval=0.0)
    with pytest.raises(ConfigurationError):
        SubmissionSchedule(start=-1.0)


class _FakeAgent:
    def __init__(self):
        self.received = []

    def submit(self, job):
        self.received.append(job)


def test_process_submits_to_random_connected_agents():
    from repro.sim import Simulator

    sim = Simulator(seed=0)
    agents = [_FakeAgent() for _ in range(3)]
    schedule = SubmissionSchedule(job_count=30, interval=1.0, start=0.0)
    process = SubmissionProcess(
        sim,
        agents=lambda: agents,
        generator=JobGenerator(random.Random(1)),
        schedule=schedule,
        rng=random.Random(2),
    )
    sim.run_until(60.0)
    assert process.submitted == 30
    per_agent = [len(a.received) for a in agents]
    assert sum(per_agent) == 30
    assert all(count > 0 for count in per_agent)  # spread over initiators


def test_process_uses_live_agent_list():
    from repro.sim import Simulator

    sim = Simulator(seed=0)
    agents = [_FakeAgent()]
    schedule = SubmissionSchedule(job_count=10, interval=1.0, start=0.0)
    SubmissionProcess(
        sim,
        agents=lambda: agents,
        generator=JobGenerator(random.Random(1)),
        schedule=schedule,
        rng=random.Random(2),
    )
    sim.call_at(4.5, lambda: agents.append(_FakeAgent()))
    sim.run_until(20.0)
    assert len(agents[1].received) > 0


def test_submitted_jobs_carry_submission_time():
    from repro.sim import Simulator

    sim = Simulator(seed=0)
    agent = _FakeAgent()
    SubmissionProcess(
        sim,
        agents=lambda: [agent],
        generator=JobGenerator(random.Random(3)),
        schedule=SubmissionSchedule(job_count=3, interval=5.0, start=10.0),
        rng=random.Random(4),
    )
    sim.run_until(30.0)
    assert [j.submit_time for j in agent.received] == [10.0, 15.0, 20.0]
