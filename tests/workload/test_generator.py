"""Unit tests for the §IV-D job generator."""

import random
import statistics

import pytest

from repro.errors import ConfigurationError
from repro.types import HOUR
from repro.workload import ERT_DISTRIBUTION, BoundedNormal, JobGenerator


def test_ert_distribution_matches_paper_parameters():
    assert ERT_DISTRIBUTION.mean == 2.5 * HOUR
    assert ERT_DISTRIBUTION.stddev == 1.25 * HOUR
    assert ERT_DISTRIBUTION.lower == 1 * HOUR
    assert ERT_DISTRIBUTION.upper == 4 * HOUR


def test_bounded_normal_respects_bounds():
    rng = random.Random(0)
    draws = [ERT_DISTRIBUTION.sample(rng) for _ in range(2000)]
    assert all(HOUR <= d <= 4 * HOUR for d in draws)


def test_bounded_normal_keeps_central_tendency():
    rng = random.Random(1)
    draws = [ERT_DISTRIBUTION.sample(rng) for _ in range(5000)]
    assert 2.3 * HOUR < statistics.fmean(draws) < 2.7 * HOUR


def test_bounded_normal_zero_stddev_is_constant():
    dist = BoundedNormal(mean=5.0, stddev=0.0, lower=0.0, upper=10.0)
    assert dist.sample(random.Random(0)) == 5.0


def test_bounded_normal_validation():
    with pytest.raises(ConfigurationError):
        BoundedNormal(mean=5.0, stddev=1.0, lower=6.0, upper=10.0)
    with pytest.raises(ConfigurationError):
        BoundedNormal(mean=5.0, stddev=-1.0, lower=0.0, upper=10.0)


def test_scaled_to_mean_preserves_relative_shape():
    scaled = ERT_DISTRIBUTION.scaled_to_mean(7.5 * HOUR)
    assert scaled.mean == 7.5 * HOUR
    assert scaled.stddev == pytest.approx(3.75 * HOUR)
    assert scaled.lower == pytest.approx(3 * HOUR)
    assert scaled.upper == pytest.approx(12 * HOUR)


def test_batch_generator_produces_no_deadlines():
    gen = JobGenerator(random.Random(2))
    jobs = [gen.make_job(100.0) for _ in range(50)]
    assert all(j.deadline is None for j in jobs)
    assert all(j.submit_time == 100.0 for j in jobs)


def test_job_ids_are_unique_and_sequential():
    gen = JobGenerator(random.Random(3))
    jobs = [gen.make_job(0.0) for _ in range(10)]
    assert [j.job_id for j in jobs] == list(range(1, 11))


def test_deadline_generator_slack_mean():
    gen = JobGenerator(random.Random(4), deadline_slack_mean=7.5 * HOUR)
    jobs = [gen.make_job(0.0) for _ in range(2000)]
    slacks = [j.deadline - j.ert - j.submit_time for j in jobs]
    assert all(3 * HOUR <= s <= 12 * HOUR for s in slacks)
    assert 7.0 * HOUR < statistics.fmean(slacks) < 8.0 * HOUR


def test_deadlineh_uses_tighter_slack():
    gen = JobGenerator(random.Random(5), deadline_slack_mean=2.5 * HOUR)
    jobs = [gen.make_job(0.0) for _ in range(500)]
    slacks = [j.deadline - j.ert - j.submit_time for j in jobs]
    assert all(HOUR <= s <= 4 * HOUR for s in slacks)


def test_jobs_iterator_stamps_submit_times():
    gen = JobGenerator(random.Random(6))
    times = [10.0, 20.0, 30.0]
    jobs = list(gen.jobs(iter(times)))
    assert [j.submit_time for j in jobs] == times
