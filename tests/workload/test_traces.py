"""Unit tests for the workload trace format."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.types import HOUR
from repro.workload import JobGenerator, TraceEntry, WorkloadTrace

from ..helpers import make_job


def test_entry_roundtrip_through_job():
    job = make_job(1, ert=2 * HOUR, deadline=10 * HOUR, submit_time=HOUR)
    entry = TraceEntry.from_job(job)
    back = entry.to_job(1)
    assert back == job


def test_trace_from_generator_freezes_workload():
    gen = JobGenerator(random.Random(0))
    trace = WorkloadTrace.from_generator(gen, [0.0, 10.0, 20.0])
    assert len(trace) == 3
    jobs = trace.jobs()
    assert [j.submit_time for j in jobs] == [0.0, 10.0, 20.0]
    assert [j.job_id for j in jobs] == [1, 2, 3]


def test_trace_save_load_roundtrip(tmp_path):
    gen = JobGenerator(random.Random(1), deadline_slack_mean=7.5 * HOUR)
    trace = WorkloadTrace.from_generator(gen, [float(i) for i in range(20)])
    path = tmp_path / "trace.json"
    trace.save(path)
    loaded = WorkloadTrace.load(path)
    assert loaded.entries == trace.entries


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text('{"format": "something-else", "jobs": []}')
    with pytest.raises(ConfigurationError):
        WorkloadTrace.load(path)


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "v99.json"
    path.write_text('{"format": "aria-workload-trace", "version": 99, "jobs": []}')
    with pytest.raises(ConfigurationError):
        WorkloadTrace.load(path)


def test_trace_iteration():
    gen = JobGenerator(random.Random(2))
    trace = WorkloadTrace.from_generator(gen, [0.0, 1.0])
    assert len(list(trace)) == 2
