"""Unit tests for the JSDL job-description importer (paper §III-A)."""

import pytest

from repro.errors import ConfigurationError
from repro.grid import Architecture, OperatingSystem
from repro.workload.jsdl import parse_jsdl, parse_jsdl_file

JSDL = """<?xml version="1.0" encoding="UTF-8"?>
<jsdl:JobDefinition xmlns:jsdl="http://schemas.ggf.org/jsdl/2005/11/jsdl"
    xmlns:jsdl-posix="http://schemas.ggf.org/jsdl/2005/11/jsdl-posix">
  <jsdl:JobDescription>
    <jsdl:Application>
      <jsdl-posix:POSIXApplication>
        <jsdl-posix:Executable>/bin/render</jsdl-posix:Executable>
        <jsdl-posix:WallTimeLimit>9000</jsdl-posix:WallTimeLimit>
      </jsdl-posix:POSIXApplication>
    </jsdl:Application>
    <jsdl:Resources>
      <jsdl:CPUArchitecture>
        <jsdl:CPUArchitectureName>x86_64</jsdl:CPUArchitectureName>
      </jsdl:CPUArchitecture>
      <jsdl:OperatingSystem>
        <jsdl:OperatingSystemType>
          <jsdl:OperatingSystemName>LINUX</jsdl:OperatingSystemName>
        </jsdl:OperatingSystemType>
      </jsdl:OperatingSystem>
      <jsdl:TotalPhysicalMemory>
        <jsdl:LowerBoundedRange>4294967296</jsdl:LowerBoundedRange>
      </jsdl:TotalPhysicalMemory>
      <jsdl:TotalDiskSpace>
        <jsdl:LowerBoundedRange>2147483648</jsdl:LowerBoundedRange>
      </jsdl:TotalDiskSpace>
    </jsdl:Resources>
  </jsdl:JobDescription>
</jsdl:JobDefinition>
"""


def test_parse_full_document():
    job = parse_jsdl(JSDL, job_id=7, submit_time=100.0)
    assert job.job_id == 7
    assert job.ert == 9000.0
    assert job.requirements.architecture is Architecture.AMD64
    assert job.requirements.os is OperatingSystem.LINUX
    assert job.requirements.memory_gb == 4
    assert job.requirements.disk_gb == 2
    assert job.deadline is None


def test_parse_with_deadline():
    job = parse_jsdl(JSDL, deadline=50_000.0)
    assert job.deadline == 50_000.0
    assert job.has_deadline


def test_memory_rounds_up_to_gb():
    text = JSDL.replace("4294967296", "4294967297")  # 4 GiB + 1 byte
    assert parse_jsdl(text).requirements.memory_gb == 5


def test_architecture_aliases():
    for alias, expected in (
        ("powerpc", Architecture.POWER),
        ("sparc", Architecture.SPARC),
        ("ia64", Architecture.IA64),
    ):
        text = JSDL.replace("x86_64", alias)
        assert parse_jsdl(text).requirements.architecture is expected


def test_os_aliases():
    text = JSDL.replace("LINUX", "FreeBSD")
    assert parse_jsdl(text).requirements.os is OperatingSystem.BSD


def test_unknown_architecture_rejected():
    with pytest.raises(ConfigurationError, match="CPUArchitectureName"):
        parse_jsdl(JSDL.replace("x86_64", "quantum9000"))


def test_unknown_os_rejected():
    with pytest.raises(ConfigurationError, match="OperatingSystemName"):
        parse_jsdl(JSDL.replace("LINUX", "TempleOS"))


def test_missing_walltime_rejected():
    broken = JSDL.replace("WallTimeLimit", "SoftTimeLimit")
    with pytest.raises(ConfigurationError, match="WallTimeLimit"):
        parse_jsdl(broken)


def test_malformed_xml_rejected():
    with pytest.raises(ConfigurationError, match="malformed"):
        parse_jsdl("<jsdl:JobDefinition>")


def test_non_numeric_memory_rejected():
    with pytest.raises(ConfigurationError, match="non-numeric"):
        parse_jsdl(JSDL.replace("4294967296", "lots"))


def test_parsed_job_is_schedulable_end_to_end(tmp_path):
    path = tmp_path / "job.jsdl"
    path.write_text(JSDL)
    job = parse_jsdl_file(path, job_id=1)

    from repro.core import AriaConfig

    from ..core.conftest import MiniGrid

    grid = MiniGrid(["FCFS", "FCFS"], config=AriaConfig(rescheduling=False))
    grid.agents[0].submit(job)
    grid.sim.run_until(5 * 3600.0)
    assert grid.record(1).completed
