"""Unit tests for job descriptors."""

import pytest

from repro.errors import ConfigurationError
from repro.types import HOUR

from ..helpers import make_job


def test_job_fields():
    job = make_job(5, ert=2 * HOUR, deadline=10 * HOUR, submit_time=HOUR)
    assert job.job_id == 5
    assert job.ert == 2 * HOUR
    assert job.deadline == 10 * HOUR
    assert job.has_deadline


def test_batch_job_has_no_deadline():
    assert not make_job(1).has_deadline


def test_job_is_immutable():
    job = make_job(1)
    with pytest.raises(AttributeError):
        job.ert = 42.0


def test_non_positive_ert_rejected():
    with pytest.raises(ConfigurationError):
        make_job(1, ert=0.0)


def test_deadline_before_submission_rejected():
    with pytest.raises(ConfigurationError):
        make_job(1, ert=HOUR, deadline=HOUR, submit_time=2 * HOUR)
