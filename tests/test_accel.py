"""The optional-numpy accelerator must be invisible in results.

The contract (docs/PERFORMANCE.md): with numpy installed the vector
kernels in :mod:`repro.accel` run the hot arithmetic, and every simulated
outcome — down to the last float bit — matches the pure-Python fallback.
These tests exercise the kernels directly against their scalar
definitions and then replay a full seeded scenario with the accelerator
forced off, comparing canonical summary JSON against the accel-on run.
"""

import json
import random

import pytest

from repro import accel
from repro.accel import (
    MIN_VECTOR_LEN,
    completion_etcs,
    describe,
    prefix_fold,
    slack_values,
)
from repro.errors import ConfigurationError
from repro.experiments import ScenarioScale, run


@pytest.fixture
def forced(request):
    """Force the accel path on/off for one test, restoring the default."""

    def force(value: bool) -> None:
        if value and not accel.HAS_NUMPY:
            pytest.skip("numpy not installed")
        accel._set_enabled(value)

    yield force
    accel._set_enabled(None)


def _scalar_prefix_fold(values, base):
    out = []
    acc = base
    for value in values:
        acc += value
        out.append(acc)
    return out


def _random_values(seed, n):
    rng = random.Random(seed)
    # Mixed magnitudes provoke rounding differences in any kernel that
    # dares reorder the summation (pairwise/np.sum would fail this).
    return [rng.uniform(0.001, 3600.0) * 10 ** rng.randint(-3, 3) for _ in range(n)]


@pytest.mark.parametrize("n", [0, 1, MIN_VECTOR_LEN - 1, MIN_VECTOR_LEN, 1000])
def test_prefix_fold_bit_identical(forced, n):
    values = _random_values(n, n)
    expected = _scalar_prefix_fold(values, 37.25)
    forced(False)
    off = prefix_fold(values, 37.25)
    forced(True)
    on = prefix_fold(values, 37.25)
    assert off == expected
    assert on == expected  # exact float equality, not approx


@pytest.mark.parametrize("n", [MIN_VECTOR_LEN, 777])
def test_completion_etcs_bit_identical(forced, n):
    ertps = _random_values(n + 1, n)
    now, remaining = 12_345.678, 901.234
    expected = [now + acc for acc in _scalar_prefix_fold(ertps, remaining)]
    forced(False)
    off = completion_etcs(ertps, now, remaining)
    forced(True)
    on = completion_etcs(ertps, now, remaining)
    assert off == expected
    assert on == expected


def test_slack_values_bit_identical(forced):
    n = MIN_VECTOR_LEN * 2
    deadlines = _random_values(7, n)
    etcs = _random_values(11, n)
    expected = [d - e for d, e in zip(deadlines, etcs)]
    forced(False)
    off = slack_values(deadlines, etcs)
    forced(True)
    on = slack_values(deadlines, etcs)
    assert off == expected
    assert on == expected


def test_env_gate(monkeypatch):
    monkeypatch.setenv("ARIA_ACCEL", "off")
    assert accel._resolve_enabled() is False
    monkeypatch.setenv("ARIA_ACCEL", "auto")
    assert accel._resolve_enabled() == accel.HAS_NUMPY
    monkeypatch.setenv("ARIA_ACCEL", "on")
    if accel.HAS_NUMPY:
        assert accel._resolve_enabled() is True
    else:
        with pytest.raises(ConfigurationError):
            accel._resolve_enabled()
    monkeypatch.setenv("ARIA_ACCEL", "bogus")
    with pytest.raises(ConfigurationError):
        accel._resolve_enabled()


def test_describe_mentions_state():
    assert "numpy" in describe() or "python" in describe()


#: (scenario, scale factory, seed) replayed under both arithmetic paths.
_REPLAYS = [
    ("iMixed", ScenarioScale.tiny, 0),
    ("iDeadline", ScenarioScale.small, 1),
]


@pytest.mark.parametrize("scenario,scale,seed", _REPLAYS)
def test_run_summary_identical_with_accel_on_and_off(forced, scenario, scale, seed):
    forced(False)
    off = run(scenario, scale(), seed=seed).summary().to_dict()
    forced(True)
    on = run(scenario, scale(), seed=seed).summary().to_dict()
    assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)
