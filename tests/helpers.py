"""Shared test fixtures and builders."""

from repro.grid import (
    AccuracyModel,
    Architecture,
    GridNode,
    JobRequirements,
    NodeProfile,
    OperatingSystem,
)
from repro.scheduling import FCFSScheduler
from repro.sim import Simulator
from repro.types import HOUR
from repro.workload import Job

LINUX_AMD64 = NodeProfile(
    architecture=Architecture.AMD64,
    memory_gb=8,
    disk_gb=8,
    os=OperatingSystem.LINUX,
)

SMALL_REQS = JobRequirements(
    architecture=Architecture.AMD64,
    memory_gb=2,
    disk_gb=2,
    os=OperatingSystem.LINUX,
)


def make_job(job_id=1, ert=1 * HOUR, deadline=None, submit_time=0.0, priority=0,
             requirements=SMALL_REQS, not_before=None):
    return Job(
        job_id=job_id,
        requirements=requirements,
        ert=ert,
        deadline=deadline,
        submit_time=submit_time,
        priority=priority,
        not_before=not_before,
    )


def make_node(
    node_id=0,
    sim=None,
    profile=LINUX_AMD64,
    performance_index=1.0,
    scheduler=None,
    accuracy=None,
):
    sim = sim if sim is not None else Simulator(seed=0)
    scheduler = scheduler if scheduler is not None else FCFSScheduler()
    accuracy = accuracy if accuracy is not None else AccuracyModel(epsilon=0.0)
    node = GridNode(
        node_id=node_id,
        sim=sim,
        profile=profile,
        performance_index=performance_index,
        scheduler=scheduler,
        accuracy=accuracy,
    )
    return sim, node
