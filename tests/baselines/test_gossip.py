"""Tests for the gossip-based scheduling baseline ([25]-style)."""

import pytest

from repro.baselines.gossip import CacheEntry, GossipConfig
from repro.errors import ConfigurationError
from repro.experiments import ScenarioScale, run
from repro.experiments.figures import scenario_summary

TINY = ScenarioScale.tiny()


def test_gossip_config_validation():
    with pytest.raises(ConfigurationError):
        GossipConfig(interval=0.0)
    with pytest.raises(ConfigurationError):
        GossipConfig(fanout=0)
    with pytest.raises(ConfigurationError):
        GossipConfig(digest_size=0)
    with pytest.raises(ConfigurationError):
        GossipConfig(digest_size=10, cache_capacity=5)
    with pytest.raises(ConfigurationError):
        GossipConfig(retry_interval=0.0)


@pytest.fixture(scope="module")
def gossip_run():
    return run("gossip", TINY, seed=1)


def test_gossip_completes_the_workload(gossip_run):
    metrics = gossip_run.metrics
    assert (
        metrics.completed_jobs + metrics.unschedulable_count() == TINY.jobs
    )
    assert metrics.completed_jobs >= 0.9 * TINY.jobs


def test_gossip_traffic_is_digest_dominated(gossip_run):
    by_type = gossip_run.traffic.bytes_by_type
    assert by_type["GossipDigest"] > by_type["GossipAssign"]
    # No ARiA discovery traffic in this design.
    assert "Request" not in by_type
    assert "Inform" not in by_type


def test_gossip_jobs_execute_where_assigned(gossip_run):
    for record in gossip_run.metrics.records.values():
        if record.completed:
            assert record.start_node == record.assignments[0][1]
            assert record.reschedule_count == 0


def test_gossip_is_deterministic():
    a = run("gossip", TINY, seed=4)
    b = run("gossip", TINY, seed=4)
    assert (
        a.metrics.average_completion_time()
        == b.metrics.average_completion_time()
    )


def test_stale_caches_herd_worse_than_aria():
    # The design's documented weakness: cached (stale) state spreads work
    # less evenly than ARiA's pull-based fresh costs.
    gossip = run("gossip", TINY, seed=1)
    aria = scenario_summary("iMixed", TINY, (1,))
    gossip_fairness = gossip.metrics.load_fairness(TINY.nodes)
    assert gossip_fairness is not None
    assert aria.load_fairness >= gossip_fairness * 0.9  # ARiA not worse


def test_cache_entry_slots():
    entry = CacheEntry(1, None, 1.0, 0.0, 0.0)
    with pytest.raises(AttributeError):
        entry.extra = 1
