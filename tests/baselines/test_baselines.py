"""Unit tests for the comparison meta-schedulers."""

import random

import pytest

from repro.baselines import (
    CentralizedMetaScheduler,
    MultiRequestScheduler,
    RandomAssignScheduler,
)
from repro.grid import AccuracyModel, Architecture, GridNode, NodeProfile, OperatingSystem
from repro.metrics import GridMetrics
from repro.scheduling import make_scheduler
from repro.sim import Simulator
from repro.types import HOUR

from ..helpers import LINUX_AMD64, make_job

POWER_PROFILE = NodeProfile(
    architecture=Architecture.POWER,
    memory_gb=16,
    disk_gb=16,
    os=OperatingSystem.LINUX,
)


def make_pool(indices, profiles=None, seed=0):
    sim = Simulator(seed=seed)
    metrics = GridMetrics()
    nodes = [
        GridNode(
            node_id=i,
            sim=sim,
            profile=(profiles[i] if profiles else LINUX_AMD64),
            performance_index=p,
            scheduler=make_scheduler("FCFS"),
            accuracy=AccuracyModel(epsilon=0.0),
        )
        for i, p in enumerate(indices)
    ]
    return sim, metrics, nodes


def test_centralized_picks_globally_cheapest():
    sim, metrics, nodes = make_pool([1.0, 2.0, 1.5])
    sched = CentralizedMetaScheduler(nodes, metrics)
    sched.submit(make_job(1, ert=2 * HOUR))
    sim.run_until(10.0)
    assert metrics.records[1].start_node == 1  # fastest node


def test_centralized_skips_non_matching_nodes():
    sim, metrics, nodes = make_pool(
        [2.0, 1.0], profiles=[POWER_PROFILE, LINUX_AMD64]
    )
    sched = CentralizedMetaScheduler(nodes, metrics)
    sched.submit(make_job(1))
    sim.run_until(10.0)
    assert metrics.records[1].start_node == 1


def test_centralized_unschedulable_job():
    sim, metrics, nodes = make_pool([1.0], profiles=[POWER_PROFILE])
    sched = CentralizedMetaScheduler(nodes, metrics)
    sched.submit(make_job(1))
    assert metrics.records[1].unschedulable


def test_centralized_traffic_accounting():
    sim, metrics, nodes = make_pool([1.0, 1.0])
    sched = CentralizedMetaScheduler(nodes, metrics)
    sched.submit(make_job(1))
    sched.submit(make_job(2))
    assert sched.monitor.count_by_type == {"Request": 2, "Assign": 2}


def test_centralized_balances_load_over_time():
    sim, metrics, nodes = make_pool([1.0, 1.0])
    sched = CentralizedMetaScheduler(nodes, metrics)
    for jid in range(1, 5):
        sched.submit(make_job(jid, ert=HOUR))
    sim.run_until(10.0)
    # 4 equal jobs over 2 equal nodes: 2 each.
    held = sorted(sum(n.holds_job(j) for j in range(1, 5)) for n in nodes)
    assert held == [2, 2]


def test_multirequest_enqueues_k_copies_and_revokes():
    sim, metrics, nodes = make_pool([1.0, 1.0, 1.0])
    sched = MultiRequestScheduler(nodes, metrics, k=3)
    sched.submit(make_job(1, ert=HOUR))
    sim.run_until(1.0)
    # One copy started; the two others were revoked synchronously.
    assert sched.revoked_copies == 2
    assert sum(n.running is not None for n in nodes) == 1
    assert sched.monitor.count_by_type["Assign"] == 3
    assert sched.monitor.count_by_type["Cancel"] == 2


def test_multirequest_never_runs_two_copies():
    sim, metrics, nodes = make_pool([1.0, 1.0], seed=3)
    sched = MultiRequestScheduler(nodes, metrics, k=2)
    for jid in range(1, 6):
        sched.submit(make_job(jid, ert=HOUR))
    sim.run_until(20 * HOUR)
    assert metrics.completed_jobs == 5
    # Every record finished exactly once (no duplicate execution).
    for record in metrics.records.values():
        assert record.completed


def test_multirequest_k_capped_by_candidates():
    sim, metrics, nodes = make_pool([1.0])
    sched = MultiRequestScheduler(nodes, metrics, k=5)
    sched.submit(make_job(1, ert=HOUR))
    sim.run_until(1.0)
    assert sched.revoked_copies == 0


def test_multirequest_validates_k():
    sim, metrics, nodes = make_pool([1.0])
    with pytest.raises(ValueError):
        MultiRequestScheduler(nodes, metrics, k=0)


def test_random_assign_spreads_jobs():
    sim, metrics, nodes = make_pool([1.0] * 4)
    sched = RandomAssignScheduler(nodes, metrics, rng=random.Random(0))
    for jid in range(1, 41):
        sched.submit(make_job(jid, ert=HOUR))
    targets = {record.assignments[0][1] for record in metrics.records.values()}
    assert len(targets) == 4  # all nodes were used


def test_random_assign_only_matching_nodes():
    sim, metrics, nodes = make_pool(
        [1.0, 1.0], profiles=[POWER_PROFILE, LINUX_AMD64]
    )
    sched = RandomAssignScheduler(nodes, metrics, rng=random.Random(1))
    for jid in range(1, 11):
        sched.submit(make_job(jid))
    assert all(
        record.assignments[0][1] == 1 for record in metrics.records.values()
    )


def test_random_assign_unschedulable():
    sim, metrics, nodes = make_pool([1.0], profiles=[POWER_PROFILE])
    sched = RandomAssignScheduler(nodes, metrics, rng=random.Random(2))
    sched.submit(make_job(1))
    assert metrics.records[1].unschedulable


def test_centralized_beats_random_on_completion_time():
    def run(factory):
        sim, metrics, nodes = make_pool([1.0, 1.3, 1.6, 2.0], seed=9)
        sched = factory(nodes, metrics)
        for jid in range(1, 21):
            sched.submit(make_job(jid, ert=2 * HOUR))
        sim.run_until(100 * HOUR)
        assert metrics.completed_jobs == 20
        return metrics.average_completion_time()

    central = run(CentralizedMetaScheduler)
    rand = run(
        lambda nodes, metrics: RandomAssignScheduler(
            nodes, metrics, rng=random.Random(4)
        )
    )
    assert central < rand


def test_empty_pool_rejected():
    with pytest.raises(ValueError):
        CentralizedMetaScheduler([], GridMetrics())
