"""Tests for the baseline experiment runner."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import RunOptions, ScenarioScale, run

TINY = ScenarioScale.tiny()


@pytest.mark.parametrize("name", ["centralized", "multirequest", "random"])
def test_baselines_complete_the_workload(name):
    result = run(name, TINY, seed=1)
    metrics = result.metrics
    assert result.baseline == name
    assert metrics.completed_jobs + metrics.unschedulable_count() >= 0.9 * TINY.jobs
    assert metrics.average_completion_time() is not None
    assert result.traffic.count_by_type["Request"] == TINY.jobs


def test_unknown_baseline_rejected():
    with pytest.raises(ConfigurationError):
        run("oracle", TINY)


def test_baselines_share_workload_across_seeds():
    # Same seed => identical workload => identical submitted job set.
    a = run("centralized", TINY, seed=3)
    b = run("random", TINY, seed=3)
    jobs_a = {(r.job.job_id, r.job.ert) for r in a.metrics.records.values()}
    jobs_b = {(r.job.job_id, r.job.ert) for r in b.metrics.records.values()}
    assert jobs_a == jobs_b


def test_multirequest_reports_revocations():
    result = run(
        "multirequest", TINY, seed=1, options=RunOptions(multirequest_k=3)
    )
    assert result.revoked_copies > 0
    assert result.traffic.count_by_type.get("Cancel", 0) == result.revoked_copies


def test_centralized_is_deterministic():
    a = run("centralized", TINY, seed=5)
    b = run("centralized", TINY, seed=5)
    assert (
        a.metrics.average_completion_time()
        == b.metrics.average_completion_time()
    )
