"""Property-based tests for schedulers and cost functions."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    EDFScheduler,
    FCFSScheduler,
    LJFScheduler,
    SJFScheduler,
    completion_times,
    nal,
)
from repro.scheduling.base import QueuedJob
from repro.types import HOUR

from ..helpers import make_job

erts = st.floats(min_value=60.0, max_value=4 * HOUR, allow_nan=False)
arrival_times = st.floats(min_value=0.0, max_value=10 * HOUR, allow_nan=False)
batch_factories = st.sampled_from([FCFSScheduler, SJFScheduler, LJFScheduler])


@st.composite
def batch_queues(draw, min_size=0, max_size=12):
    """A scheduler preloaded with random jobs, plus the fill data."""
    factory = draw(batch_factories)
    scheduler = factory()
    jobs = draw(
        st.lists(st.tuples(erts, arrival_times), min_size=min_size, max_size=max_size)
    )
    for index, (ert, arrival) in enumerate(sorted(jobs, key=lambda x: x[1])):
        scheduler.enqueue(make_job(index + 1, ert=ert), ert, now=arrival)
    return scheduler


@given(batch_queues())
def test_execution_order_is_a_permutation(scheduler):
    order = scheduler.ordered_queue()
    assert sorted(e.job.job_id for e in order) == sorted(
        e.job.job_id for e in scheduler.queued()
    )


@given(batch_queues(min_size=1))
def test_pop_next_drains_in_policy_order(scheduler):
    expected = [e.job.job_id for e in scheduler.ordered_queue()]
    popped = []
    while True:
        entry = scheduler.pop_next()
        if entry is None:
            break
        popped.append(entry.job.job_id)
    # Arrival-stable policies keep the same order while draining: each
    # popped job was the head of the remaining order.
    assert popped == expected
    assert len(scheduler) == 0


@given(batch_queues(), erts, st.floats(min_value=0, max_value=HOUR))
def test_batch_cost_is_positive_and_at_least_ertp(scheduler, ert, running):
    job = make_job(999, ert=ert)
    cost = scheduler.cost_of(job, ert, now=0.0, running_remaining=running)
    assert cost >= ert  # cannot finish faster than its own ERTp
    assert cost >= running  # cannot start before the running job ends


@given(batch_queues(), erts)
def test_fcfs_cost_equals_total_backlog(scheduler, ert):
    # Only meaningful for FCFS: the probe lands at the end of the queue.
    if not isinstance(scheduler, FCFSScheduler):
        scheduler = FCFSScheduler()
    job = make_job(999, ert=ert)
    backlog = sum(e.ertp for e in scheduler.queued())
    cost = scheduler.cost_of(job, ert, now=0.0, running_remaining=100.0)
    assert math.isclose(cost, 100.0 + backlog + ert)


@given(batch_queues(), erts, erts)
def test_cost_monotonic_in_running_remaining(scheduler, ert, extra):
    job = make_job(999, ert=ert)
    low = scheduler.cost_of(job, ert, now=0.0, running_remaining=0.0)
    high = scheduler.cost_of(job, ert, now=0.0, running_remaining=extra)
    assert high >= low


@given(st.lists(st.tuples(erts, arrival_times), min_size=1, max_size=10))
def test_completion_times_are_strictly_increasing(jobs):
    entries = [
        QueuedJob(make_job(i + 1, ert=ert), ert, arrival)
        for i, (ert, arrival) in enumerate(jobs)
    ]
    etcs = completion_times(entries, now=50.0, running_remaining=10.0)
    assert all(b > a for a, b in zip(etcs, etcs[1:]))
    assert etcs[0] == 50.0 + 10.0 + entries[0].ertp


@st.composite
def deadline_entries(draw, min_size=1, max_size=10):
    jobs = draw(
        st.lists(
            st.tuples(erts, st.floats(min_value=0, max_value=30 * HOUR)),
            min_size=min_size,
            max_size=max_size,
        )
    )
    return [
        QueuedJob(
            make_job(i + 1, ert=ert, deadline=ert + slack + 1.0), ert, 0.0
        )
        for i, (ert, slack) in enumerate(jobs)
    ]


@given(deadline_entries())
def test_nal_sign_reflects_deadline_feasibility(entries):
    etcs = completion_times(entries, now=0.0, running_remaining=0.0)
    gammas = [e.job.deadline - etc for e, etc in zip(entries, etcs)]
    value = nal(entries, now=0.0, running_remaining=0.0)
    if all(g >= 0 for g in gammas):
        # All on time: NAL is the negated total slack.
        assert math.isclose(value, -sum(abs(g) for g in gammas))
        assert value <= 0
    else:
        # Late jobs contribute their lateness; on-time jobs nothing.
        assert math.isclose(
            value, sum(abs(g) for g in gammas if g < 0)
        )
        assert value > 0


@given(deadline_entries(max_size=8))
def test_edf_orders_by_deadline_always(entries):
    scheduler = EDFScheduler()
    for entry in entries:
        scheduler.enqueue(entry.job, entry.ertp, now=0.0)
    order = scheduler.ordered_queue()
    deadlines = [e.job.deadline for e in order]
    assert deadlines == sorted(deadlines)


@given(batch_queues(min_size=1), erts)
@settings(max_examples=50)
def test_hypothetical_order_never_mutates(scheduler, ert):
    before = [e.job.job_id for e in scheduler.queued()]
    scheduler.hypothetical_order(make_job(999, ert=ert), ert)
    assert [e.job.job_id for e in scheduler.queued()] == before
