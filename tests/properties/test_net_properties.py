"""Property-based tests for the network layer."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    ConstantLatency,
    Message,
    PairwiseLogNormalLatency,
    SimTransport,
    UniformLatency,
)
from repro.sim import Simulator

seeds = st.integers(min_value=0, max_value=10_000)


class Packet(Message):
    SIZE_BYTES = 64
    __slots__ = ("tag",)

    def __init__(self, tag):
        self.tag = tag


@given(
    seeds,
    st.floats(min_value=0.001, max_value=0.2),
    st.floats(min_value=0.1, max_value=2.0),
)
@settings(max_examples=30)
def test_lognormal_latency_positive_and_stable(seed, median, sigma):
    model = PairwiseLogNormalLatency(median=median, sigma=sigma, jitter=0.0)
    rng = random.Random(seed)
    first = model.sample(1, 2, rng)
    assert first > 0
    assert model.sample(2, 1, rng) == first  # symmetric and cached


@given(seeds, st.integers(min_value=1, max_value=100))
@settings(max_examples=25)
def test_transport_conserves_messages(seed, count):
    sim = Simulator(seed=seed)
    transport = SimTransport(
        sim,
        latency=UniformLatency(0.001, 0.1),
        loss_probability=0.2 if seed % 2 else 0.0,
    )
    received = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: received.append(msg.tag))
    for index in range(count):
        transport.send(1, 2, Packet(index))
    sim.run()
    assert len(received) + transport.lost == count
    assert transport.monitor.count_by_type["Packet"] == count
    assert sorted(set(received)) == sorted(received)  # no duplication


@given(seeds, st.integers(min_value=2, max_value=40))
@settings(max_examples=20)
def test_constant_latency_preserves_send_order(seed, count):
    sim = Simulator(seed=seed)
    transport = SimTransport(sim, latency=ConstantLatency(0.01))
    received = []
    transport.register(1, lambda src, msg: None)
    transport.register(2, lambda src, msg: received.append(msg.tag))
    for index in range(count):
        transport.send(1, 2, Packet(index))
    sim.run()
    assert received == list(range(count))
