"""Property-based tests for the overlay substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay import (
    OverlayGraph,
    SeenCache,
    bfs_distances,
    choose_targets,
    hop_distance,
    is_connected,
    random_regular,
    ring,
    scale_free,
    small_world,
)

sizes = st.integers(min_value=4, max_value=40)
seeds = st.integers(min_value=0, max_value=1000)


@st.composite
def random_graphs(draw):
    """A connected random graph built from a ring plus random chords."""
    size = draw(sizes)
    rng = random.Random(draw(seeds))
    graph = ring(size)
    for _ in range(draw(st.integers(min_value=0, max_value=2 * size))):
        a, b = rng.sample(range(size), 2)
        graph.add_link(a, b)
    return graph


@given(random_graphs())
def test_link_count_matches_adjacency(graph):
    assert graph.link_count == len(list(graph.links()))
    assert sum(graph.degree(n) for n in graph.nodes()) == 2 * graph.link_count


@given(random_graphs())
def test_neighbors_are_symmetric(graph):
    for a, b in graph.links():
        assert b in graph.neighbors(a)
        assert a in graph.neighbors(b)


@given(random_graphs(), seeds)
def test_remove_node_cleans_all_links(graph, seed):
    rng = random.Random(seed)
    victim = rng.choice(graph.nodes())
    degree = graph.degree(victim)
    links_before = graph.link_count
    graph.remove_node(victim)
    assert graph.link_count == links_before - degree
    for node in graph.nodes():
        assert victim not in graph.neighbors(node)


@given(random_graphs())
def test_bfs_satisfies_triangle_inequality_on_links(graph):
    source = graph.nodes()[0]
    distances = bfs_distances(graph, source)
    for a, b in graph.links():
        if a in distances and b in distances:
            assert abs(distances[a] - distances[b]) <= 1


@given(random_graphs(), seeds)
def test_hop_distance_is_symmetric(graph, seed):
    rng = random.Random(seed)
    a, b = rng.sample(graph.nodes(), 2)
    assert hop_distance(graph, a, b) == hop_distance(graph, b, a)


@given(random_graphs(), seeds, st.integers(min_value=1, max_value=6))
def test_choose_targets_returns_distinct_neighbors(graph, seed, fanout):
    rng = random.Random(seed)
    node = rng.choice(graph.nodes())
    targets = choose_targets(graph, node, fanout, rng)
    assert len(targets) == min(fanout, graph.degree(node))
    assert len(set(targets)) == len(targets)
    neighbors = set(graph.neighbors(node))
    assert all(t in neighbors for t in targets)


@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200),
    st.integers(min_value=1, max_value=16),
)
def test_seen_cache_agrees_with_reference_lru(keys, capacity):
    cache = SeenCache(capacity=capacity)
    reference = []  # most recent last
    for key in keys:
        expected_seen = key in reference
        if expected_seen:
            reference.remove(key)
        reference.append(key)
        if len(reference) > capacity:
            reference.pop(0)
        assert cache.seen_before(key) == expected_seen
    assert len(cache) == len(reference)
    for key in reference:
        assert key in cache


@given(st.integers(min_value=10, max_value=40), seeds)
@settings(max_examples=20)
def test_random_regular_invariants(size, seed):
    # size >= 10: the pairing model needs headroom over the degree, else a
    # simple connected pairing may not exist within the retry budget.
    degree = 4
    if (size * degree) % 2:
        size += 1
    graph = random_regular(size, degree, random.Random(seed))
    assert all(graph.degree(n) == degree for n in graph.nodes())
    assert is_connected(graph)


@given(st.integers(min_value=8, max_value=40), seeds)
@settings(max_examples=20)
def test_small_world_preserves_link_count(size, seed):
    graph = small_world(size, 4, random.Random(seed))
    assert graph.link_count == size * 2
    assert is_connected(graph)


@given(st.integers(min_value=6, max_value=40), seeds)
@settings(max_examples=20)
def test_scale_free_connected_with_min_degree(size, seed):
    graph = scale_free(size, 2, random.Random(seed))
    assert is_connected(graph)
    assert all(graph.degree(n) >= 2 for n in graph.nodes())


@given(random_graphs())
def test_copy_equals_original(graph):
    clone = graph.copy()
    assert clone.nodes() == graph.nodes()
    assert sorted(clone.links()) == sorted(graph.links())
    assert clone.link_count == graph.link_count
