"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.events import PRIORITY, SEQ, TIME, EventQueue

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
priorities = st.integers(min_value=-5, max_value=5)


@given(st.lists(st.tuples(times, priorities), min_size=1, max_size=50))
def test_event_queue_pops_in_total_order(schedule):
    q = EventQueue()
    for time, priority in schedule:
        q.push(time, lambda: None, priority=priority)
    popped = []
    while q:
        e = q.pop()
        popped.append((e[TIME], e[PRIORITY], e[SEQ]))
    assert popped == sorted(popped)
    assert len(popped) == len(schedule)


@given(
    st.lists(st.tuples(times, st.booleans()), min_size=1, max_size=50),
)
def test_cancelled_events_never_fire(schedule):
    sim = Simulator()
    fired = []
    events = []
    for time, cancel in schedule:
        events.append(
            (sim.call_at(time, lambda t=time: fired.append(t)), cancel)
        )
    for event, cancel in events:
        if cancel:
            sim.cancel(event)
    sim.run()
    expected = sorted(t for (t, cancel) in schedule if not cancel)
    assert sorted(fired) == expected
    assert fired == sorted(fired)  # chronological execution


@given(times, st.lists(times, min_size=1, max_size=30))
def test_clock_is_monotonic(start, delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.call_at(start + delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(observed)


@given(
    st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
    st.floats(min_value=100.0, max_value=5000.0, allow_nan=False),
)
@settings(max_examples=30)
def test_every_fires_expected_number_of_times(interval, horizon):
    sim = Simulator()
    count = {"n": 0}

    def bump():
        count["n"] += 1

    sim.every(interval, bump)
    sim.run_until(horizon)
    expected = int(horizon / interval)
    # Allow one-off at the exact boundary (first fire at t=interval).
    assert abs(count["n"] - expected) <= 1


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
@settings(max_examples=50)
def test_named_streams_are_reproducible(seed, name):
    from repro.sim.rng import RandomStreams

    a = RandomStreams(seed).get(name).random()
    b = RandomStreams(seed).get(name).random()
    assert a == b
