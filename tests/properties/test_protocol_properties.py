"""Randomized end-to-end protocol invariants.

Hypothesis drives small random grids (policies, speeds, workloads, INFORM
settings) through full simulations and checks the invariants that must hold
in *every* execution of the protocol, whatever the randomness:

* no job is ever executed twice or lost (completed + unschedulable = all);
* a job executes on the node of its last ASSIGN;
* assignment history timestamps are monotonic;
* no node ever runs two jobs at once (enforced structurally, checked via
  execution intervals);
* rescheduling never happens after execution started.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AriaConfig
from repro.types import HOUR, MINUTE

from ..core.conftest import MiniGrid
from ..helpers import make_job

policies = st.lists(
    st.sampled_from(["FCFS", "SJF", "LJF"]), min_size=2, max_size=6
)
ert_lists = st.lists(
    st.floats(min_value=0.5 * HOUR, max_value=4 * HOUR), min_size=1, max_size=12
)


@st.composite
def grid_runs(draw):
    grid = MiniGrid(
        draw(policies),
        config=AriaConfig(
            rescheduling=draw(st.booleans()),
            inform_interval=draw(
                st.floats(min_value=MINUTE, max_value=10 * MINUTE)
            ),
            inform_count=draw(st.integers(min_value=1, max_value=4)),
            improvement_threshold=draw(
                st.floats(min_value=0.0, max_value=30 * MINUTE)
            ),
        ),
        indices=None,
        topology=draw(st.sampled_from(["mesh", "ring"])),
        seed=draw(st.integers(min_value=0, max_value=100)),
    )
    erts = draw(ert_lists)
    submitters = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(grid.agents) - 1),
            min_size=len(erts),
            max_size=len(erts),
        )
    )
    for job_id, (ert, submitter) in enumerate(zip(erts, submitters), start=1):
        grid.agents[submitter].submit(make_job(job_id, ert=ert))
    grid.sim.run_until(100 * HOUR)
    return grid, len(erts)


@given(grid_runs())
@settings(max_examples=25, deadline=None)
def test_protocol_invariants_hold_for_random_grids(run):
    grid, job_count = run
    metrics = grid.metrics

    # 1. Conservation: every job completes exactly once (all are hostable
    #    on the shared AMD64/LINUX profile, so none are unschedulable).
    assert metrics.completed_jobs == job_count
    assert metrics.unschedulable_count() == 0

    per_node_intervals = {}
    for record in metrics.records.values():
        # 2. Completed jobs have a coherent timeline.
        assert record.submit_time <= record.start_time <= record.finish_time
        # 3. The job executed on its final assignee.
        assert record.assignments, "completed job must have been assigned"
        assert record.start_node == record.assignments[-1][1]
        # 4. Assignment history is time-ordered.
        times = [t for t, _ in record.assignments]
        assert times == sorted(times)
        # 5. Every reassignment happened before execution started.
        assert times[-1] <= record.start_time
        per_node_intervals.setdefault(record.start_node, []).append(
            (record.start_time, record.finish_time)
        )

    # 6. One job at a time per node: execution intervals never overlap.
    for intervals in per_node_intervals.values():
        intervals.sort()
        for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
            assert start_b >= end_a - 1e-6
