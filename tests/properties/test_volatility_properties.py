"""Randomized volatility runs audited by the invariant validator.

Hypothesis draws churn shapes (graceful leaves, crashes, joins, fail-safe
on/off) and the full run must pass every invariant in
:func:`repro.experiments.validation.validate_run` — conservation, timeline
coherence, placement, mutual exclusion, reservations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import RunOptions, ScenarioScale, run, validate_run
from repro.experiments.churn import ChurnPlan
from repro.experiments.failures import CrashPlan

TINY = ScenarioScale.tiny()


@given(
    seed=st.integers(min_value=0, max_value=50),
    fraction=st.floats(min_value=0.05, max_value=0.4),
    failsafe=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_crash_runs_always_validate(seed, fraction, failsafe):
    plan = CrashPlan(fraction=fraction, start=2000.0)
    result = run(
        plan, TINY, seed=seed, options=RunOptions(failsafe=failsafe)
    )
    assert validate_run(result) == []
    # Conservation under crashes: nothing completes twice and the counter
    # matches the records.
    assert result.metrics.duplicate_executions == 0


@given(
    seed=st.integers(min_value=0, max_value=50),
    crash_weight=st.floats(min_value=0.0, max_value=1.0),
    interval=st.floats(min_value=120.0, max_value=600.0),
    failsafe=st.booleans(),
)
@settings(max_examples=8, deadline=None)
def test_churn_runs_always_validate(seed, crash_weight, interval, failsafe):
    plan = ChurnPlan(
        interval=interval, start=1500.0, end=12_000.0, crash_weight=crash_weight
    )
    result = run(
        plan, TINY, seed=seed, options=RunOptions(failsafe=failsafe)
    )
    assert validate_run(result) == []


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=6, deadline=None)
def test_graceful_churn_never_loses_jobs(seed):
    plan = ChurnPlan(interval=150.0, start=1500.0, end=12_000.0)
    result = run(plan, TINY, seed=seed)
    metrics = result.metrics
    lost = [
        r
        for r in metrics.records.values()
        if not r.completed and not r.unschedulable
    ]
    # Graceful departure hands every job off; the only acceptable
    # "incomplete" jobs are those still executing at the horizon.
    for record in lost:
        assert record.start_time is not None or record.assignments
