"""Property-based tests for workload generation and records."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.records import JobRecord
from repro.types import HOUR
from repro.workload import BoundedNormal, JobGenerator, TraceEntry

from ..helpers import make_job

seeds = st.integers(min_value=0, max_value=10_000)


@given(
    seeds,
    st.floats(min_value=0.5 * HOUR, max_value=20 * HOUR),
)
@settings(max_examples=30)
def test_generated_jobs_respect_all_bounds(seed, slack_mean):
    gen = JobGenerator(random.Random(seed), deadline_slack_mean=slack_mean)
    for _ in range(20):
        job = gen.make_job(submit_time=100.0)
        assert HOUR <= job.ert <= 4 * HOUR
        slack = job.deadline - job.submit_time - job.ert
        assert 0.4 * slack_mean <= slack <= 1.6 * slack_mean


@given(seeds)
@settings(max_examples=30)
def test_job_ids_strictly_increase(seed):
    gen = JobGenerator(random.Random(seed))
    ids = [gen.make_job(0.0).job_id for _ in range(30)]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)


@given(
    st.floats(min_value=1.0, max_value=1e5),
    st.floats(min_value=0.0, max_value=1e4),
    seeds,
)
@settings(max_examples=50)
def test_bounded_normal_sample_within_bounds(mean, stddev, seed):
    dist = BoundedNormal(
        mean=mean, stddev=stddev, lower=mean * 0.5, upper=mean * 1.5
    )
    value = dist.sample(random.Random(seed))
    assert mean * 0.5 <= value <= mean * 1.5


@given(
    st.floats(min_value=1.0, max_value=1e4),
    st.floats(min_value=1.0, max_value=1e4),
)
@settings(max_examples=50)
def test_scaled_to_mean_preserves_relative_bounds(mean, new_mean):
    dist = BoundedNormal(mean=mean, stddev=mean / 2, lower=0.4 * mean, upper=1.6 * mean)
    scaled = dist.scaled_to_mean(new_mean)
    assert scaled.lower / scaled.mean == pytest_approx(dist.lower / dist.mean)
    assert scaled.upper / scaled.mean == pytest_approx(dist.upper / dist.mean)


def pytest_approx(x, rel=1e-9):
    import pytest

    return pytest.approx(x, rel=rel)


@given(seeds)
@settings(max_examples=30)
def test_trace_entries_roundtrip(seed):
    gen = JobGenerator(random.Random(seed), deadline_slack_mean=5 * HOUR)
    for _ in range(10):
        job = gen.make_job(50.0)
        entry = TraceEntry.from_job(job)
        assert entry.to_job(job.job_id) == job


@given(
    st.floats(min_value=0, max_value=1e5),
    st.floats(min_value=0, max_value=1e5),
    st.floats(min_value=1, max_value=1e5),
)
@settings(max_examples=50)
def test_job_record_time_identities(submit, wait, run_time):
    start = submit + wait
    finish = start + run_time
    record = JobRecord(
        job=make_job(1, ert=HOUR, submit_time=submit),
        initiator=0,
        submit_time=submit,
    )
    record.assignments.append((submit, 3))
    record.start_time = start
    record.start_node = 3
    record.finish_time = finish
    assert record.completed
    assert record.waiting_time == start - submit
    assert record.execution_time == finish - start
    assert abs(
        record.completion_time - (record.waiting_time + record.execution_time)
    ) < 1e-6


@given(
    st.floats(min_value=1, max_value=1e5),
    st.one_of(
        st.just(0.0),
        st.floats(min_value=0.01, max_value=1e5),
        st.floats(min_value=-1e5, max_value=-0.01),
    ),
)
@settings(max_examples=50)
def test_deadline_outcome_consistency(run_time, margin):
    # finish = deadline - margin: positive margin => met, negative => missed
    submit = 0.0
    deadline = max(run_time + abs(margin), 1.0) + 1000.0
    finish = deadline - margin
    record = JobRecord(
        job=make_job(1, ert=run_time, deadline=deadline, submit_time=submit),
        initiator=0,
        submit_time=submit,
    )
    record.start_time = 0.0
    record.finish_time = finish
    import math

    # finish = deadline - margin is computed in floating point, so compare
    # with a tolerance scaled to the magnitudes involved.
    tolerance = 1e-9 * max(abs(deadline), abs(finish), 1.0)
    if margin >= tolerance:
        assert record.missed_deadline is False
        assert math.isclose(record.lateness, margin, abs_tol=tolerance)
        assert record.missed_time is None
    elif margin <= -tolerance:
        assert record.missed_deadline is True
        assert math.isclose(record.missed_time, -margin, abs_tol=tolerance)
