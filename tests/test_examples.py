"""Smoke tests: the fast example scripts run end to end.

Only the examples that finish in about a second run here (the others
exercise `ScenarioScale.small()` and belong to manual runs); each must
execute without errors and print its key result.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=("prog",), capsys=None):
    old_argv = sys.argv
    sys.argv = list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


def test_quickstart_runs(capsys):
    out = run_example("quickstart.py", capsys=capsys)
    assert "completed 8/8 jobs" in out
    assert "traffic:" in out


def test_trace_replay_runs(capsys):
    out = run_example("trace_replay.py", capsys=capsys)
    assert "saved and reloaded 200 jobs" in out
    assert "ERT:" in out


def test_overlay_playground_runs(capsys):
    out = run_example("overlay_playground.py", capsys=capsys)
    assert "BLATANT-S convergence" in out
    assert "still connected:  True" in out


def test_fault_injection_runs(capsys):
    out = run_example("fault_injection.py", capsys=capsys)
    assert "faults + reliability" in out
    assert "retransmissions" in out


def test_examples_all_have_main_guard():
    for path in sorted(EXAMPLES.glob("*.py")):
        text = path.read_text()
        assert '__name__ == "__main__"' in text, path.name
        assert text.startswith("#!/usr/bin/env python"), path.name


def test_examples_cover_every_figure_family():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "policy_comparison.py",
        "deadline_grid.py",
        "expanding_grid.py",
        "baseline_comparison.py",
        "overlay_playground.py",
        "trace_replay.py",
        "failsafe_demo.py",
        "volatile_grid.py",
    } <= names


def test_trace_explorer_runs(capsys):
    out = run_example("trace_explorer.py", capsys=capsys)
    assert "traced" in out and "protocol events" in out
    assert "timeline:" in out
    assert "why node" in out
