"""The live chaos gauntlet: faults + node lifecycle across ten seeds.

Every run combines wire-level fault injection (i.i.d. loss, loss
bursts, duplication, one partition window, delay spikes) with real
node-lifecycle chaos over sockets — one crash-restart (endpoint torn
down, fresh incarnation on a new port, card re-discovery), one
brand-new mid-run join and one graceful leave — while an
:class:`~repro.experiments.OnlineInvariantChecker` rides the trace
stream.  The bar is the paper's safety story: no invariant may break
under any of it, on any seed.

The module fixture runs all ten seeds once (each a few wall seconds);
the tests then slice the collected results.
"""

import pytest

from repro.experiments import FaultPlan, OnlineInvariantChecker
from repro.runtime import LiveFailureSchedule, LiveRunConfig, run_live

SEEDS = tuple(range(10))

#: Protocol horizon and compression: 3000 protocol seconds in ~5 wall
#: seconds, leaving every HTTP round-trip hundreds of times smaller
#: than the accept window.
DURATION = 3_000.0
TIME_SCALE = 600.0
NODES = 5


def chaos_config(seed):
    """One gauntlet run: everything-on faults plus full lifecycle chaos."""
    wall = DURATION / TIME_SCALE
    return LiveRunConfig(
        nodes=NODES,
        jobs=3,
        seed=seed,
        time_scale=TIME_SCALE,
        duration=DURATION,
        ert_mean=600.0,
        fault_plan=FaultPlan.chaos(DURATION),
        failure_schedule=LiveFailureSchedule.chaos(wall),
        failsafe=True,
    )


@pytest.fixture(scope="module")
def chaos_runs():
    """(seed, RunResult, checker) for every seed, run back to back."""
    runs = []
    for seed in SEEDS:
        checker = OnlineInvariantChecker()
        result = run_live(chaos_config(seed), online_checker=checker)
        runs.append((seed, result, checker))
    return runs


def test_no_seed_violates_any_invariant(chaos_runs):
    for seed, result, checker in chaos_runs:
        assert checker.violations == [], f"seed {seed}: {checker.violations}"
        assert result.extra_violations == [], (
            f"seed {seed}: {result.extra_violations}"
        )
        assert result.summary().violations == [], f"seed {seed}"


def test_online_checker_really_watched_every_run(chaos_runs):
    for seed, _result, checker in chaos_runs:
        assert checker.checked > 0, f"seed {seed}: checker saw no events"


def test_faults_really_shaped_the_wire(chaos_runs):
    fault_keys = (
        "fault_iid_lost",
        "fault_burst_lost",
        "fault_partition_dropped",
        "fault_duplicated",
    )
    for seed, result, _checker in chaos_runs:
        for key in fault_keys:
            assert key in result.network, f"seed {seed}: missing {key}"
    # Across ten seeds the injector must have actually bitten.
    total = sum(
        result.network[key]
        for _seed, result, _checker in chaos_runs
        for key in fault_keys
    )
    assert total > 0


def test_lifecycle_chaos_really_happened(chaos_runs):
    for seed, result, _checker in chaos_runs:
        counts = [count for _t, count in result.node_count_series]
        assert counts, f"seed {seed}: no node-count samples"
        # The crash-restart's downtime dips the live-node count below
        # the initial fleet ...
        assert min(counts) < NODES, f"seed {seed}: no crash observed"
        # ... and the mid-run join lifts it above it.
        assert max(counts) > NODES, f"seed {seed}: no join observed"


def test_no_inbound_message_was_rejected(chaos_runs):
    # Chaos mangles delivery, never the wire format: every POST that
    # arrives still parses.
    for seed, result, _checker in chaos_runs:
        assert result.network["rejected"] == 0, f"seed {seed}"


def test_online_checker_flags_a_seeded_violation_in_run():
    """The soak harness's self-test: a forged duplicate completion must
    be caught *during* the run, not at teardown."""
    checker = OnlineInvariantChecker()
    config = LiveRunConfig(
        nodes=4,
        jobs=2,
        seed=1,
        time_scale=TIME_SCALE,
        duration=DURATION,
        ert_mean=600.0,
    )
    result = run_live(config, online_checker=checker, seed_violation=True)
    assert any("double execution" in v for v in checker.violations)
    # The online finding is folded into the standard verdict too.
    assert any("double execution" in v for v in result.extra_violations)
    assert any("double execution" in v for v in result.summary().violations)
