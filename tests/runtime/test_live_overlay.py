"""Integration: a full paper scenario on a live localhost overlay.

The expensive fixture boots 8 real HTTP node servers, discovers them via
their agent cards, runs the iMixed workload under wall-clock timers and
returns the standard :class:`~repro.experiments.runner.RunResult` — the
assertions then hold it to the same bar as a simulated run: every job
completes, the invariant checker is clean, and the summary pipeline
(validation, extras, serialization) works unchanged.
"""

import asyncio
import json

import pytest

from repro.runtime import LiveRunConfig, LiveTransport, WallClock, run_live
from repro.runtime.transport import AGENT_CARD_PATH, PROTOCOL_VERSION

CONFIG = LiveRunConfig(
    nodes=8,
    jobs=8,
    seed=3,
    time_scale=600.0,
    duration=6_000.0,
    ert_mean=600.0,
)


@pytest.fixture(scope="module")
def live_run():
    return run_live(CONFIG)


def test_live_overlay_completes_the_workload(live_run):
    metrics = live_run.metrics
    assert metrics.completed_jobs + metrics.unschedulable_count() == CONFIG.jobs
    assert metrics.completed_jobs >= 1


def test_live_overlay_violates_no_invariants(live_run):
    assert live_run.extra_violations == []
    assert live_run.summary().violations == []


def test_live_overlay_summary_is_populated(live_run):
    summary = live_run.summary()
    assert summary.kind == "scenario"
    assert summary.completed_jobs == live_run.metrics.completed_jobs
    assert summary.traffic_bytes["Request"] > 0
    assert summary.final_node_count == CONFIG.nodes
    # Round-trips like any simulated summary.
    assert json.dumps(summary.to_dict())


def test_live_overlay_exercises_the_protocol(live_run):
    types = set(live_run.traffic.count_by_type)
    assert {"Request", "Accept", "Assign", "Inform"} <= types
    # The reliability layer really ran: ASSIGNs were acked over HTTP.
    assert live_run.network["reliable_delivered"] >= 1
    assert live_run.network["reliable_acks"] >= 1
    assert live_run.network["dropped_stale"] == 0


def test_live_overlay_ran_on_wall_time(live_run):
    # Real timers fired; the run records them like simulator events.
    assert live_run.executed_events > 0


def test_config_rejects_impossible_wall_windows():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        LiveRunConfig(accept_wait=5.0, time_scale=10_000.0)
    with pytest.raises(ConfigurationError):
        LiveRunConfig(nodes=1)
    with pytest.raises(ConfigurationError):
        LiveRunConfig(duration=10.0, submission_start=60.0)


def test_agent_cards_drive_discovery():
    """Discovery learns ids from the cards on the wire, not from state."""

    async def main():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop, seed=0)
        transport = LiveTransport(clock, loop=loop)
        try:
            host, port = await transport.add_endpoint(7)
            card = transport.agent_card(7)
            assert card["protocol"] == PROTOCOL_VERSION
            assert card["node_id"] == 7
            assert card["url"] == f"http://{host}:{port}"
            assert card["endpoints"]["message"] == "/message"
            assert AGENT_CARD_PATH == "/.well-known/agent.json"

            directory = await transport.discover([(host, port)])
            assert directory == {7: (host, port)}
        finally:
            clock.stop()
            await transport.close()

    asyncio.run(main())
