"""Tests for the process-isolated runtime (``repro.runtime.proc``).

Three layers, matching the module's structure:

* pure policy — :class:`ProcessFailureSchedule` validation and the
  supervisor's exponential backoff arithmetic;
* supervision — a real spawn-based :class:`Supervisor` driven through
  manual ``poll(now=...)`` steps against tiny crash/clean targets, so
  the reap → backoff → respawn → circuit-breaker ladder is asserted
  deterministically without sleeping through real backoffs;
* end to end — module-scoped :func:`run_procs` runs (expensive, shared
  by several small tests, like ``test_live_overlay``): a clean fleet,
  and a SIGKILL + SIGSTOP chaos fleet whose restarted node must prove
  journal recovery across a real process death.
"""

import asyncio
import sys
import time

import pytest

from repro.errors import ConfigurationError
from repro.runtime.proc import (
    ProcRunConfig,
    ProcessFailureSchedule,
    Supervisor,
    WorkerSpec,
    run_procs,
)


# ----------------------------------------------------------------------
# ProcessFailureSchedule
# ----------------------------------------------------------------------
def test_schedule_normalises_and_validates():
    schedule = ProcessFailureSchedule(
        kills=[(3, 1)], stalls=[(5, 2, 0)]  # lists + ints normalise
    )
    assert schedule.kills == ((3.0, 1),)
    assert schedule.stalls == ((5.0, 2.0, 0),)
    assert bool(schedule)
    assert not ProcessFailureSchedule()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kills": [(-1.0, 0)]},
        {"kills": [(1.0, -2)]},
        {"stalls": [(1.0, 0.0, 0)]},
        {"stalls": [(-1.0, 2.0, 0)]},
    ],
)
def test_schedule_rejects_bad_entries(kwargs):
    with pytest.raises(ConfigurationError):
        ProcessFailureSchedule(**kwargs)


def test_schedule_chaos_scales_with_wall_duration():
    schedule = ProcessFailureSchedule.chaos(20.0)
    assert schedule.kills == ((6.0, 1),)
    (at, duration, victim) = schedule.stalls[0]
    assert at == pytest.approx(12.0)
    assert duration == pytest.approx(1.5)  # capped
    assert victim == 2
    with pytest.raises(ConfigurationError):
        ProcessFailureSchedule.chaos(0.0)


# ----------------------------------------------------------------------
# Supervisor policy + lifecycle
# ----------------------------------------------------------------------
def _spec(run_dir, index=0):
    """A minimal picklable spec; the unit-test targets never read it."""
    return WorkerSpec(
        index=index,
        node_ids=(index,),
        total_nodes=2,
        scenario_name="iMixed",
        seed=0,
        time_scale=600.0,
        duration=6_000.0,
        accept_wait=60.0,
        reliability=False,
        failsafe=False,
        host="127.0.0.1",
        ports=(0,),
        run_dir=str(run_dir),
        run_epoch=0.0,
    )


def _crash_target(spec):
    sys.exit(3)


def _clean_target(spec):
    sys.exit(0)


def test_backoff_delay_doubles_and_caps():
    supervisor = Supervisor(
        [], backoff_base=0.5, backoff_cap=10.0, max_restarts=5
    )
    delays = [supervisor.backoff_delay(k) for k in range(6)]
    assert delays == [0.5, 1.0, 2.0, 4.0, 8.0, 10.0]


def _wait_exit(worker, deadline=20.0):
    """Block until the worker's current process has exited."""
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if worker.process is not None and worker.process.exitcode is not None:
            return
        time.sleep(0.02)
    raise AssertionError("worker process did not exit in time")


def test_supervisor_backoff_then_circuit_breaker(tmp_path):
    supervisor = Supervisor(
        [_spec(tmp_path)],
        backoff_base=0.5,
        max_restarts=2,
        target=_crash_target,
    )
    worker = supervisor.workers[0]
    try:
        supervisor.start()
        assert worker.state == "running"

        # Crash 1: reap at a pinned clock, check the scheduled backoff.
        _wait_exit(worker)
        supervisor.poll(now=100.0)
        assert worker.state == "backoff"
        assert worker.restart_at == pytest.approx(100.5)
        supervisor.poll(now=100.4)  # before restart_at: nothing happens
        assert worker.state == "backoff"
        assert worker.restarts == 0
        supervisor.poll(now=100.6)  # past restart_at: respawn
        assert worker.state == "running"
        assert worker.restarts == 1

        # Crash 2: the delay doubles.
        _wait_exit(worker)
        supervisor.poll(now=200.0)
        assert worker.restart_at == pytest.approx(201.0)
        supervisor.poll(now=201.1)
        assert worker.restarts == 2

        # Crash 3: restarts have hit max_restarts — the breaker trips
        # and the worker is never respawned.
        _wait_exit(worker)
        supervisor.poll(now=300.0)
        assert worker.state == "broken"
        supervisor.poll(now=10_000.0)
        assert worker.state == "broken"
        assert supervisor.total_restarts == 2
        stats = supervisor.stats()
        assert stats["restarts"] == 2
        assert stats["broken"] == [0]
        assert stats["states"] == ["broken"]
    finally:
        asyncio.run(supervisor.drain(grace=1.0))


def test_supervisor_clean_exit_is_not_restarted(tmp_path):
    supervisor = Supervisor(
        [_spec(tmp_path)], backoff_base=0.01, target=_clean_target
    )
    worker = supervisor.workers[0]
    try:
        supervisor.start()
        _wait_exit(worker)
        supervisor.poll(now=100.0)
        assert worker.state == "stopped"
        supervisor.poll(now=10_000.0)  # stays stopped: exit 0 is final
        assert worker.state == "stopped"
        assert supervisor.total_restarts == 0
    finally:
        asyncio.run(supervisor.drain(grace=1.0))


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_config_rejects_bad_shapes():
    with pytest.raises(ConfigurationError):
        ProcRunConfig(nodes=1)
    with pytest.raises(ConfigurationError):
        ProcRunConfig(accept_wait=1.0, time_scale=600.0)  # <10ms wall
    with pytest.raises(ConfigurationError):
        ProcRunConfig(nodes=4, group_size=4, seed_violation=True)
    with pytest.raises(ConfigurationError):
        ProcRunConfig(trace_level="off", seed_violation=True)


def test_config_worker_count_rounds_up():
    assert ProcRunConfig(nodes=6, group_size=1).worker_count() == 6
    assert ProcRunConfig(nodes=6, group_size=4).worker_count() == 2
    assert ProcRunConfig(nodes=5, group_size=2).worker_count() == 3


# ----------------------------------------------------------------------
# End to end: clean fleet
# ----------------------------------------------------------------------
PLAIN_CONFIG_KW = dict(
    nodes=4,
    jobs=3,
    seed=1,
    time_scale=600.0,
    duration=12_000.0,
    early_exit_grace=0.5,
)


@pytest.fixture(scope="module")
def plain_result(tmp_path_factory):
    config = ProcRunConfig(
        run_dir=str(tmp_path_factory.mktemp("procs-plain")),
        **PLAIN_CONFIG_KW,
    )
    return run_procs(config)


def test_plain_fleet_has_no_violations(plain_result):
    assert plain_result.violations == []
    assert plain_result.checked_events > 0


def test_plain_fleet_moves_jobs(plain_result):
    assert plain_result.submitted == PLAIN_CONFIG_KW["jobs"]
    assert plain_result.completed >= 1


def test_plain_fleet_traces_are_whole(plain_result):
    # No SIGKILL → the graceful drain flushed every sink: no torn lines.
    assert plain_result.torn_lines == 0
    assert not plain_result.interrupted


def test_plain_fleet_supervision_is_quiet(plain_result):
    assert plain_result.supervisor["restarts"] == 0
    assert plain_result.supervisor["broken"] == []
    assert set(plain_result.supervisor["states"]) == {"stopped"}


# ----------------------------------------------------------------------
# End to end: SIGKILL + SIGSTOP chaos with journal recovery
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def chaos_result(tmp_path_factory):
    config = ProcRunConfig(
        nodes=5,
        jobs=4,
        seed=3,
        time_scale=600.0,
        duration=18_000.0,
        early_exit_grace=0.5,
        backoff_base=0.2,
        run_dir=str(tmp_path_factory.mktemp("procs-chaos")),
        failure_schedule=ProcessFailureSchedule(
            kills=((6.0, 1),),
            stalls=((12.0, 1.5, 2),),
        ),
    )
    return run_procs(config)


def test_chaos_fleet_has_no_violations(chaos_result):
    # The load-bearing claim: a real SIGKILL mid-run, a respawned
    # incarnation, and the merged cross-process trace still satisfies
    # every invariant (no double execution, no phantom completions).
    assert chaos_result.violations == []
    assert chaos_result.checked_events > 0


def test_chaos_fleet_restarted_the_victim(chaos_result):
    assert chaos_result.supervisor["restarts"] >= 1
    assert chaos_result.supervisor["broken"] == []


def test_chaos_fleet_recovered_journal_from_disk(chaos_result):
    # The respawned process announced that it reloaded its durable
    # journal, and the on-disk incarnation counter moved past boot 0.
    assert any(
        event.get("incarnation", 0) >= 1 for event in chaos_result.recovered
    )
    assert any(
        incarnation >= 1
        for incarnation in chaos_result.journal_incarnations.values()
    )


def test_chaos_fleet_still_moves_jobs(chaos_result):
    assert chaos_result.submitted == 4
    assert chaos_result.completed >= 1
