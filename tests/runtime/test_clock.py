"""Unit tests for the wall-clock implementation of the Clock protocol."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.runtime import WallClock


def in_loop(coro_fn):
    """Run an async test body in a fresh event loop."""
    return asyncio.run(coro_fn())


def test_time_scale_compresses_protocol_time():
    async def main():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop, time_scale=100.0)
        before = clock.now
        await asyncio.sleep(0.05)
        elapsed = clock.now - before
        # 0.05 wall seconds at scale 100 ~= 5 protocol seconds.
        assert 2.0 < elapsed < 60.0

    in_loop(main)


def test_call_after_fires_in_scaled_wall_time():
    async def main():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop, time_scale=100.0)
        fired = []
        clock.call_after(2.0, fired.append, "a")  # 20 ms wall
        await asyncio.sleep(0.005)
        assert fired == []  # not yet: the delay is real
        await asyncio.sleep(0.1)
        assert fired == ["a"]
        assert clock.executed_events == 1

    in_loop(main)


def test_call_at_past_target_fires_soon_instead_of_raising():
    # Documented divergence from the simulator (which raises): real time
    # has already passed, so the best a live clock can do is "now".
    async def main():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop, time_scale=1000.0)
        await asyncio.sleep(0.01)
        fired = []
        clock.call_at(0.0, fired.append, "late")
        await asyncio.sleep(0.02)
        assert fired == ["late"]

    in_loop(main)


def test_cancel_prevents_firing():
    async def main():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop, time_scale=100.0)
        fired = []
        handle = clock.call_after(1.0, fired.append, "x")
        clock.cancel(handle)
        clock.cancel(handle)  # idempotent
        await asyncio.sleep(0.05)
        assert fired == []

    in_loop(main)


def test_every_recurs_until_stopped():
    async def main():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop, time_scale=100.0)
        ticks = []
        stop = clock.every(1.0, lambda: ticks.append(clock.now))  # 10 ms wall
        await asyncio.sleep(0.06)
        stop()
        count = len(ticks)
        assert count >= 2
        await asyncio.sleep(0.04)
        assert len(ticks) == count  # stopped means stopped

    in_loop(main)


def test_stop_silences_pending_timers():
    async def main():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop, time_scale=100.0)
        fired = []
        clock.call_after(0.5, fired.append, "never")
        clock.stop()
        await asyncio.sleep(0.03)
        assert fired == []
        assert clock.executed_events == 0

    in_loop(main)


def test_streams_are_deterministic_per_seed():
    async def main():
        loop = asyncio.get_running_loop()
        a = WallClock(loop, seed=42)
        b = WallClock(loop, seed=42)
        assert [a.streams.get("x").random() for _ in range(5)] == [
            b.streams.get("x").random() for _ in range(5)
        ]

    in_loop(main)


def test_validation():
    async def main():
        loop = asyncio.get_running_loop()
        with pytest.raises(ConfigurationError):
            WallClock(loop, time_scale=0.0)
        clock = WallClock(loop)
        with pytest.raises(ConfigurationError):
            clock.call_after(-1.0, lambda: None)
        with pytest.raises(ConfigurationError):
            clock.every(0.0, lambda: None)

    in_loop(main)
