"""Fleet telemetry on the live runtime: ``/metrics`` pages over real
HTTP, propagated causal trace ids on the wire, and the collector's
merged fleet series.

The expensive fixture runs a 4-node overlay with a transport-level
memory trace, fail-safe mode on (so initiators learn about completion
via ``Done`` — the last leg of the cross-node causal chain) and the
telemetry collector scraping every 250 ms.
"""

import asyncio

import pytest

from repro.obs import CONTENT_TYPE, TraceConfig, parse_prometheus
from repro.runtime import (
    METRICS_PATH,
    LiveRunConfig,
    LiveTransport,
    WallClock,
    run_live,
)

CONFIG = LiveRunConfig(
    nodes=4,
    jobs=4,
    time_scale=300.0,
    duration=3_000.0,
    failsafe=True,
    scrape_interval=0.25,
)


@pytest.fixture(scope="module")
def traced_run():
    return run_live(
        CONFIG, obs=TraceConfig(level="transport", sink="memory")
    )


def _sends(result):
    return [e for e in result.trace_events if e["ev"] == "net.send"]


def test_metrics_endpoint_serves_prometheus_over_http():
    """A raw socket GET sees the 0.0.4 content type and a parseable page."""

    async def main():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop, seed=0)
        transport = LiveTransport(clock, loop=loop)
        try:
            host, port = await transport.add_endpoint(7)
            assert transport.agent_card(7)["endpoints"]["metrics"] == METRICS_PATH
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                f"GET {METRICS_PATH} HTTP/1.1\r\nHost: {host}\r\n"
                "Connection: close\r\n\r\n".encode("ascii")
            )
            await writer.drain()
            response = (await reader.read()).decode("utf-8")
            writer.close()
            await writer.wait_closed()
        finally:
            clock.stop()
            await transport.close()

        head, _, body = response.partition("\r\n\r\n")
        assert " 200 " in head.splitlines()[0]
        assert f"Content-Type: {CONTENT_TYPE}" in head
        samples = parse_prometheus(body)
        # The node's own health snapshot renders as labelled gauges.
        assert samples['aria_node_node_id{node="7"}'] == 7
        assert samples['aria_node_inbox_registered{node="7"}'] == 0

    asyncio.run(main())


def test_every_wire_send_pairs_with_a_traced_recv(traced_run):
    sends = _sends(traced_run)
    recvs = [e for e in traced_run.trace_events if e["ev"] == "net.recv"]
    assert sends and recvs
    sent = {(e["trace"], e["hop"]) for e in sends}
    for recv in recvs:
        assert (recv["trace"], recv["hop"]) in sent
        assert recv["latency"] >= 0
    # A send right at the horizon may never land; everything else pairs.
    assert len(recvs) >= 0.8 * len(sends)


def test_one_job_chain_survives_across_nodes(traced_run):
    """At least one job's REQUEST -> ACCEPT -> ASSIGN -> Done all ride
    one propagated trace id — the acceptance-critical causal chain."""
    by_trace = {}
    for send in _sends(traced_run):
        by_trace.setdefault(send["trace"], []).append(send)
    chains = [
        sends
        for sends in by_trace.values()
        if {"Request", "Accept", "Assign", "Done"}
        <= {e["type"] for e in sends}
    ]
    assert chains, "no trace carried a full Request->Accept->Assign->Done chain"
    sends = sorted(chains[0], key=lambda e: (e["t"], e["hop"]))
    first = {}
    for send in sends:
        first.setdefault(send["type"], (send["t"], send["hop"]))
    order = [first[t] for t in ("Request", "Accept", "Assign", "Done")]
    assert order == sorted(order), "chain legs out of causal order"
    # Hops really advanced across the chain (not re-stamped at 0).
    assert first["Done"][1] > first["Request"][1]


def test_live_events_carry_wall_clock_stamps(traced_run):
    stamped = [e for e in traced_run.trace_events if "wall" in e]
    assert len(stamped) == len(traced_run.trace_events)
    walls = [e["wall"] for e in sorted(stamped, key=lambda e: e["t"])]
    assert all(w > 1e9 for w in walls)  # epoch seconds, not protocol time


def test_hop_latency_histogram_lands_in_telemetry(traced_run):
    assert traced_run.telemetry["net.hop_latency.count"] > 0


def test_collector_merged_fleet_series_into_the_result(traced_run):
    series = traced_run.fleet_series
    assert "fleet.nodes_up" in series and series["fleet.nodes_up"]
    assert max(v for _, v in series["fleet.nodes_up"]) == CONFIG.nodes
    completed = [v for _, v in series["fleet.completed_jobs"]]
    # The last scrape round may precede the final completion by up to
    # one interval; it can never overshoot the run's own tally.
    assert max(completed) >= 1
    assert completed[-1] <= traced_run.metrics.completed_jobs


def test_fleet_series_round_trip_through_the_summary(traced_run):
    from repro.experiments.summary import RunSummary

    summary = traced_run.summary()
    payload = summary.to_dict()
    assert payload["fleet"]  # live runs persist the merged series
    restored = RunSummary.from_dict(payload)
    assert restored.fleet == summary.fleet
    # Simulated summaries (no collector) omit the key entirely, so the
    # golden files stay byte-identical.
    bare = dict(payload)
    del bare["fleet"]
    assert RunSummary.from_dict(bare).fleet == {}
