"""Round-trip tests for the live wire codec."""

import pytest

from repro.core.messages import Assign, Inform, Probe, Request
from repro.errors import ConfigurationError
from repro.grid.profiles import (
    Architecture,
    JobRequirements,
    OperatingSystem,
)
from repro.net.reliability import Ack
from repro.runtime.codec import (
    decode_envelope,
    decode_message,
    encode_envelope,
    encode_message,
)
from repro.workload.jobs import Job


def make_job(job_id=17):
    return Job(
        job_id=job_id,
        requirements=JobRequirements(
            architecture=Architecture.AMD64,
            memory_gb=2.0,
            disk_gb=10.0,
            os=OperatingSystem.LINUX,
        ),
        ert=3600.0,
        deadline=9000.0,
        submit_time=120.0,
        priority=1,
        not_before=None,
    )


def roundtrip(message):
    return decode_message(encode_message(message))


def test_job_carrying_message_roundtrips():
    request = Request(
        initiator=4, job=make_job(), hops_left=3, broadcast_id=(4, 9)
    )
    decoded = roundtrip(request)
    assert decoded.initiator == request.initiator
    assert decoded.job == request.job
    assert decoded.hops_left == request.hops_left
    assert decoded.broadcast_id == request.broadcast_id
    assert isinstance(decoded.broadcast_id, tuple)  # stays hashable


def test_enum_fields_survive_by_value():
    decoded = roundtrip(
        Request(initiator=0, job=make_job(), hops_left=1, broadcast_id=(0, 0))
    )
    req = decoded.job.requirements
    assert req.architecture is Architecture.AMD64
    assert req.os is OperatingSystem.LINUX


def test_scalar_messages_roundtrip():
    for message in (
        Probe(job_id=5, initiator=1),
        Ack(msg_id=42),
        Assign(initiator=2, job=make_job(7), reschedule=False),
    ):
        decoded = roundtrip(message)
        for slot in message.__slots__:
            assert getattr(decoded, slot) == getattr(message, slot)


def test_unregistered_message_type_refused():
    class Mystery:
        __slots__ = ("x",)

    mystery = Mystery()
    mystery.x = 1
    with pytest.raises(ConfigurationError):
        encode_message(mystery)


def test_unknown_wire_type_refused():
    with pytest.raises(ConfigurationError):
        decode_message({"type": "Nope", "fields": {}})


def test_envelope_roundtrips_routing_metadata():
    inform = Inform(
        assignee=1, job=make_job(3), cost=12.5, hops_left=2,
        broadcast_id=(1, 5),
    )
    envelope = decode_envelope(
        encode_envelope("tagged", 1, 2, inform, msg_id=99, stamp=4)
    )
    assert envelope["kind"] == "tagged"
    assert envelope["src"] == 1
    assert envelope["dst"] == 2
    assert envelope["msg_id"] == 99
    assert envelope["stamp"] == 4
    assert envelope["message"].job == inform.job


def test_envelope_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        encode_envelope("gossip", 1, 2, Probe(job_id=1, initiator=0))
    with pytest.raises(ConfigurationError):
        decode_envelope({"kind": "gossip", "src": 1, "dst": 2})
