"""One behavioral contract, two wires.

Every test here runs twice — once over the simulated transport, once
over the live HTTP transport — through a tiny backend driver that hides
only *how* messages move (event queue vs. localhost sockets) and *how*
time passes (``sim.run()`` vs. awaited wall time).  The assertions are
identical, which is the point: delivery, drop accounting, incarnation
staleness and reliability semantics are properties of the
:class:`~repro.net.Transport` contract, not of a backend.
"""

import asyncio

import pytest

from repro.experiments import FaultPlan, apply_fault_plan
from repro.net import ConstantLatency, Message, SimTransport
from repro.net.reliability import ReliabilityConfig, ReliabilityLayer
from repro.runtime import LiveTransport, WallClock
from repro.runtime.codec import MESSAGE_TYPES
from repro.sim import Simulator


class Ping(Message):
    SIZE_BYTES = 64
    __slots__ = ("tag",)

    def __init__(self, tag: str = "") -> None:
        self.tag = tag


@pytest.fixture(autouse=True)
def _ping_on_the_wire():
    """Let the live codec carry the test message type."""
    MESSAGE_TYPES["Ping"] = Ping
    yield
    MESSAGE_TYPES.pop("Ping", None)


#: Reliability policy quick enough for a test, lazy enough that a
#: localhost round-trip never triggers a spurious retransmission.
RELIABILITY = ReliabilityConfig(
    ack_timeout=5.0, backoff=2.0, max_timeout=20.0, max_retries=3
)


class SimBackend:
    """Drives the conformance scenario over the discrete-event kernel."""

    name = "sim"

    async def __aenter__(self):
        self.sim = Simulator(seed=11)
        self.transport = SimTransport(
            self.sim, latency=ConstantLatency(0.01)
        )
        return self

    async def __aexit__(self, *exc):
        return False

    def set_loss(self, probability):
        self.transport.loss_probability = probability

    async def ready(self, *node_ids):
        """Bring the named endpoints up (a no-op in-process)."""

    async def settle(self):
        """Let every in-flight delivery (and timer) run to quiescence."""
        self.sim.run()


class LiveBackend:
    """Drives the same scenario over real localhost HTTP servers."""

    name = "live"

    async def __aenter__(self):
        loop = asyncio.get_running_loop()
        self.clock = WallClock(loop, seed=11, time_scale=1.0)
        self.transport = LiveTransport(self.clock, loop=loop, send_timeout=2.0)
        return self

    async def __aexit__(self, *exc):
        self.clock.stop()
        await self.transport.drain()
        await self.transport.close()
        return False

    def set_loss(self, probability):
        self.transport.loss_probability = probability

    async def ready(self, *node_ids):
        for node_id in node_ids:
            await self.transport.add_endpoint(node_id)
        await self.transport.discover()

    async def settle(self):
        # Outbound POSTs spawn tasks; handlers may send follow-ups (acks),
        # so drain repeatedly until a full idle pass.
        for _ in range(100):
            await self.transport.drain()
            await asyncio.sleep(0.01)
            if not self.transport._tasks:
                return
        raise AssertionError("live transport never went quiet")


BACKENDS = [SimBackend, LiveBackend]


def both(test):
    """Run an async conformance case against every backend."""
    test = pytest.mark.parametrize(
        "backend_cls", BACKENDS, ids=[b.name for b in BACKENDS]
    )(test)
    return test


def drive(case, backend_cls):
    async def main():
        async with backend_cls() as backend:
            await case(backend)

    asyncio.run(main())


# ----------------------------------------------------------------------
# Delivery and accounting
# ----------------------------------------------------------------------
@both
def test_send_delivers_and_accounts(backend_cls):
    async def case(backend):
        transport = backend.transport
        got = []
        transport.register(1, lambda src, msg: None)
        transport.register(2, lambda src, msg: got.append((src, msg.tag)))
        await backend.ready(1, 2)
        transport.send(1, 2, Ping("hello"))
        await backend.settle()
        assert got == [(1, "hello")]
        assert transport.monitor.bytes_by_type == {"Ping": Ping.SIZE_BYTES}
        assert transport.monitor.count_by_type == {"Ping": 1}

    drive(case, backend_cls)


@both
def test_local_send_is_asynchronous_and_free(backend_cls):
    async def case(backend):
        transport = backend.transport
        got = []
        transport.register(1, lambda src, msg: got.append(src))
        await backend.ready(1)
        transport.send(1, 1, Ping())
        assert got == []  # never delivered synchronously
        await backend.settle()
        assert got == [1]
        assert transport.monitor.total_bytes == 0

    drive(case, backend_cls)


@both
def test_unknown_destination_counts_dropped_unknown(backend_cls):
    async def case(backend):
        transport = backend.transport
        transport.register(1, lambda src, msg: None)
        await backend.ready(1)
        transport.send(1, 99, Ping())
        await backend.settle()
        assert transport.dropped_unknown == 1
        assert transport.dropped_detached == 0
        assert transport.network_counters()["dropped_unknown"] == 1

    drive(case, backend_cls)


@both
def test_detached_destination_counts_dropped_detached(backend_cls):
    async def case(backend):
        transport = backend.transport
        got = []
        transport.register(1, lambda src, msg: None)
        transport.register(2, lambda src, msg: got.append(msg))
        await backend.ready(1, 2)
        transport.unregister(2)
        transport.send(1, 2, Ping())
        await backend.settle()
        assert got == []
        assert transport.dropped_detached == 1
        assert transport.network_counters()["dropped_detached"] == 1

    drive(case, backend_cls)


@both
def test_loss_probability_loses_but_accounts(backend_cls):
    async def case(backend):
        transport = backend.transport
        got = []
        transport.register(1, lambda src, msg: None)
        transport.register(2, lambda src, msg: got.append(msg))
        await backend.ready(1, 2)
        backend.set_loss(0.5)
        for _ in range(40):
            transport.send(1, 2, Ping())
        await backend.settle()
        assert transport.lost > 0
        assert len(got) + transport.lost == 40
        # Lost messages were still sent: accounting is send-side.
        assert transport.monitor.count_by_type["Ping"] == 40

    drive(case, backend_cls)


# ----------------------------------------------------------------------
# Fault injection: the same FaultInjector shapes either wire
# ----------------------------------------------------------------------
@both
def test_zero_probability_injector_is_transparent(backend_cls):
    async def case(backend):
        transport = backend.transport
        apply_fault_plan(transport, FaultPlan(loss=0.0, duplicate=0.0))
        got = []
        transport.register(1, lambda src, msg: None)
        transport.register(2, lambda src, msg: got.append(msg.tag))
        await backend.ready(1, 2)
        for n in range(20):
            transport.send(1, 2, Ping(str(n)))
        await backend.settle()
        # Every message travelled the faulted path and none were touched.
        assert sorted(got, key=int) == [str(n) for n in range(20)]
        counters = transport.network_counters()
        assert counters["fault_iid_lost"] == 0
        assert counters["fault_burst_lost"] == 0
        assert counters["fault_partition_dropped"] == 0
        assert counters["fault_duplicated"] == 0
        assert transport.lost == 0

    drive(case, backend_cls)


@both
def test_injected_loss_accounts_on_either_wire(backend_cls):
    async def case(backend):
        transport = backend.transport
        apply_fault_plan(transport, FaultPlan(loss=0.5, duplicate=0.0))
        got = []
        transport.register(1, lambda src, msg: None)
        transport.register(2, lambda src, msg: got.append(msg))
        await backend.ready(1, 2)
        for _ in range(40):
            transport.send(1, 2, Ping())
        await backend.settle()
        assert transport.lost > 0
        assert len(got) + transport.lost == 40
        counters = transport.network_counters()
        assert counters["fault_iid_lost"] == transport.lost
        # Fault losses are send-side: accounting happened regardless.
        assert transport.monitor.count_by_type["Ping"] == 40

    drive(case, backend_cls)


@both
def test_injected_duplication_delivers_copies_on_either_wire(backend_cls):
    async def case(backend):
        transport = backend.transport
        apply_fault_plan(transport, FaultPlan(loss=0.0, duplicate=0.9))
        got = []
        transport.register(1, lambda src, msg: None)
        transport.register(2, lambda src, msg: got.append(msg))
        await backend.ready(1, 2)
        for _ in range(40):
            transport.send(1, 2, Ping())
        await backend.settle()
        duplicated = transport.network_counters()["fault_duplicated"]
        assert duplicated > 0
        assert len(got) == 40 + duplicated

    drive(case, backend_cls)


@both
def test_delay_spikes_delay_but_never_lose(backend_cls):
    async def case(backend):
        transport = backend.transport
        apply_fault_plan(
            transport,
            FaultPlan(
                loss=0.0,
                duplicate=0.0,
                delay_spike=0.5,
                delay_spike_mean=0.02,
            ),
        )
        got = []
        transport.register(1, lambda src, msg: None)
        transport.register(2, lambda src, msg: got.append(msg))
        await backend.ready(1, 2)
        for _ in range(20):
            transport.send(1, 2, Ping())
        await backend.settle()
        assert len(got) == 20
        assert transport.lost == 0

    drive(case, backend_cls)


# ----------------------------------------------------------------------
# Incarnation staleness
# ----------------------------------------------------------------------
@both
def test_stale_incarnation_stamp_is_rejected(backend_cls):
    async def case(backend):
        transport = backend.transport
        got = []
        transport.register(1, lambda src, msg: None)
        transport.register(2, lambda src, msg: got.append(msg.tag))
        await backend.ready(1, 2)
        transport.enable_incarnations()
        transport.bump_incarnation(2)  # node 2 restarted: incarnation 1
        # A copy stamped before the restart must die on arrival ...
        transport.send_tagged(1, 2, Ping("stale"), msg_id=7, stamp=0)
        # ... while a copy addressed to the current incarnation lands.
        transport.send_tagged(1, 2, Ping("fresh"), msg_id=8, stamp=1)
        await backend.settle()
        assert got == ["fresh"]
        assert transport.dropped_stale == 1
        assert transport.network_counters()["dropped_stale"] == 1

    drive(case, backend_cls)


@both
def test_incarnation_stamp_reflects_current_incarnation(backend_cls):
    async def case(backend):
        transport = backend.transport
        assert transport.incarnation_stamp(2) is None  # stamping off
        transport.enable_incarnations()
        assert transport.incarnation_stamp(2) == 0
        assert transport.bump_incarnation(2) == 1
        assert transport.incarnation_stamp(2) == 1

    drive(case, backend_cls)


# ----------------------------------------------------------------------
# Reliability layer (acks, dedup) over either wire
# ----------------------------------------------------------------------
@both
def test_reliable_send_delivers_once_and_settles(backend_cls):
    async def case(backend):
        transport = backend.transport
        reliability = ReliabilityLayer(transport, RELIABILITY)
        got = []
        transport.register(1, lambda src, msg: None)
        transport.register(2, lambda src, msg: got.append(msg.tag))
        await backend.ready(1, 2)
        reliability.send(1, 2, Ping("once"))
        await backend.settle()
        assert got == ["once"]
        counters = transport.network_counters()
        assert counters["reliable_delivered"] == 1
        assert counters["reliable_acks"] == 1
        assert counters["reliable_pending"] == 0
        assert counters["reliable_gave_up"] == 0

    drive(case, backend_cls)


@both
def test_duplicate_tagged_delivery_is_suppressed(backend_cls):
    async def case(backend):
        transport = backend.transport
        ReliabilityLayer(transport, RELIABILITY)
        got = []
        transport.register(1, lambda src, msg: None)
        transport.register(2, lambda src, msg: got.append(msg.tag))
        await backend.ready(1, 2)
        # The same (src, msg_id) arriving twice — a retransmitted copy —
        # must reach the handler exactly once.
        transport.send_tagged(1, 2, Ping("dup"), msg_id=5)
        transport.send_tagged(1, 2, Ping("dup"), msg_id=5)
        await backend.settle()
        assert got == ["dup"]
        counters = transport.network_counters()
        assert counters["reliable_duplicates_suppressed"] == 1

    drive(case, backend_cls)
