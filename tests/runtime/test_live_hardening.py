"""Hardening tests for the live transport's failure edges.

Discovery with dead or lying seeds, malformed inbound POSTs, the
``/healthz`` route, and the running-event-loop requirement — the places
a live overlay differs from the simulator precisely because real sockets
can misbehave.
"""

import asyncio
import json
import socket

import pytest

from repro.errors import ConfigurationError
from repro.runtime import HEALTH_PATH, LiveTransport, WallClock
from repro.runtime.http import http_get_json, http_post_json, http_request
from repro.runtime.transport import MESSAGE_PATH


def free_port():
    """A port that was just free — connecting to it gets refused."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def live(test_body):
    """Run ``test_body(clock, transport)`` inside a fresh event loop."""

    async def main():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop, seed=0)
        transport = LiveTransport(clock, loop=loop, send_timeout=2.0)
        try:
            await test_body(clock, transport)
        finally:
            clock.stop()
            await transport.drain()
            await transport.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Discovery fault tolerance
# ----------------------------------------------------------------------
def test_discovery_skips_dead_seeds_and_reports_them():
    async def body(clock, transport):
        host, port = await transport.add_endpoint(1)
        dead = free_port()
        directory = await transport.discover(
            [(host, port), ("127.0.0.1", dead)]
        )
        assert directory == {1: (host, port)}
        assert len(transport.last_discovery_failures) == 1
        failed_host, failed_port, reason = (
            transport.last_discovery_failures[0]
        )
        assert (failed_host, failed_port) == ("127.0.0.1", dead)
        assert reason  # the exception is reported, not swallowed

    live(body)


def test_discovery_raises_when_every_seed_is_dead():
    async def body(clock, transport):
        with pytest.raises(ConfigurationError, match="all 2 seed"):
            await transport.discover(
                [("127.0.0.1", free_port()), ("127.0.0.1", free_port())]
            )

    live(body)


def test_discovery_rejects_duplicate_node_id_claims():
    # Two *different* live peers claiming one node id in a single round
    # is split-brain/impersonation, not restart — it must raise.
    async def main():
        loop = asyncio.get_running_loop()
        clock = WallClock(loop, seed=0)
        first = LiveTransport(clock, loop=loop)
        second = LiveTransport(clock, loop=loop)
        try:
            addr_a = await first.add_endpoint(7)
            addr_b = await second.add_endpoint(7)
            with pytest.raises(ConfigurationError, match="claimed by two"):
                await first.discover([addr_a, addr_b])
        finally:
            clock.stop()
            await first.close()
            await second.close()

    asyncio.run(main())


def test_rediscovery_after_restart_reclaims_the_node_id():
    # One node coming back on a new port re-claims its id across rounds:
    # that is a restart, and it must *update* the directory, not raise.
    async def body(clock, transport):
        host, port = await transport.add_endpoint(7)
        await transport.discover([(host, port)])
        await transport.remove_endpoint(7)
        new_host, new_port = await transport.add_endpoint(7)
        directory = await transport.discover([(new_host, new_port)])
        assert directory[7] == (new_host, new_port)

    live(body)


# ----------------------------------------------------------------------
# Inbox rejection: malformed datagrams answer 400, not 500
# ----------------------------------------------------------------------
def test_non_json_post_body_is_rejected_and_counted():
    async def body(clock, transport):
        host, port = await transport.add_endpoint(1)
        transport.register(1, lambda src, msg: None)
        status, payload = await http_request(
            host, port, "POST", MESSAGE_PATH, body=b"not json at all"
        )
        assert status == 400
        assert json.loads(payload) == {"ok": False}
        assert transport.rejected == 1
        assert transport.network_counters()["rejected"] == 1

    live(body)


def test_unknown_envelope_kind_is_rejected_and_counted():
    async def body(clock, transport):
        host, port = await transport.add_endpoint(1)
        transport.register(1, lambda src, msg: None)
        bogus = {"kind": "teleport", "src": 0, "dst": 1}
        status = await http_post_json(host, port, MESSAGE_PATH, bogus)
        assert status == 400
        assert transport.rejected == 1

    live(body)


def test_truncated_envelope_is_rejected_and_counted():
    async def body(clock, transport):
        host, port = await transport.add_endpoint(1)
        transport.register(1, lambda src, msg: None)
        # Valid JSON, but not an envelope: required fields are missing.
        status = await http_post_json(
            host, port, MESSAGE_PATH, {"kind": "send"}
        )
        assert status == 400
        assert transport.rejected == 1

    live(body)


# ----------------------------------------------------------------------
# /healthz
# ----------------------------------------------------------------------
def test_healthz_serves_base_fields_without_a_provider():
    async def body(clock, transport):
        host, port = await transport.add_endpoint(3)
        health = await http_get_json(host, port, HEALTH_PATH)
        assert health["node_id"] == 3
        assert health["inbox_registered"] is False
        assert "time" in health

    live(body)


def test_healthz_merges_the_registered_provider():
    async def body(clock, transport):
        host, port = await transport.add_endpoint(3)
        transport.register(3, lambda src, msg: None)
        transport.set_health_provider(
            3, lambda: {"queue_depth": 4, "incarnation": 2}
        )
        health = await http_get_json(host, port, HEALTH_PATH)
        assert health["inbox_registered"] is True
        assert health["queue_depth"] == 4
        assert health["incarnation"] == 2

    live(body)


def test_health_provider_dies_with_its_endpoint():
    async def body(clock, transport):
        await transport.add_endpoint(3)
        transport.set_health_provider(3, lambda: {"queue_depth": 1})
        await transport.remove_endpoint(3)
        host, port = await transport.add_endpoint(3)
        health = await http_get_json(host, port, HEALTH_PATH)
        assert "queue_depth" not in health

    live(body)


# ----------------------------------------------------------------------
# Event-loop requirement (no get_event_loop fallback)
# ----------------------------------------------------------------------
def test_live_transport_requires_a_running_loop():
    loop = asyncio.new_event_loop()
    try:
        clock = loop.run_until_complete(_make_clock(loop))
        with pytest.raises(ConfigurationError, match="running event loop"):
            LiveTransport(clock)  # constructed outside any running loop
    finally:
        clock.stop()
        loop.close()


async def _make_clock(loop):
    """Build a WallClock inside ``loop`` so only the transport is naked."""
    return WallClock(loop, seed=0)


def test_wall_clock_requires_a_running_loop():
    with pytest.raises(ConfigurationError, match="running event loop"):
        WallClock()
