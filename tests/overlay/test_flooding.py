"""Unit tests for selective-flooding helpers."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.overlay import FloodPolicy, SeenCache, choose_targets, ring


def test_flood_policy_validation():
    FloodPolicy(max_hops=9, fanout=4)  # the paper's REQUEST policy
    with pytest.raises(ConfigurationError):
        FloodPolicy(max_hops=0, fanout=1)
    with pytest.raises(ConfigurationError):
        FloodPolicy(max_hops=1, fanout=0)


def test_choose_targets_returns_all_when_few_neighbors():
    g = ring(5)
    targets = choose_targets(g, 0, fanout=4, rng=random.Random(0))
    assert sorted(targets) == [1, 4]


def test_choose_targets_samples_without_replacement():
    g = ring(5)
    g.add_link(0, 2)
    g.add_link(0, 3)
    targets = choose_targets(g, 0, fanout=3, rng=random.Random(0))
    assert len(targets) == 3
    assert len(set(targets)) == 3
    assert all(t in (1, 2, 3, 4) for t in targets)


def test_choose_targets_excludes_arrival_hop():
    g = ring(5)
    for _ in range(20):
        targets = choose_targets(g, 0, fanout=2, rng=random.Random(0), exclude=4)
        assert 4 not in targets


def test_choose_targets_keeps_excluded_when_only_neighbor():
    g = ring(5)
    g.remove_link(0, 1)  # node 0 now only connects to 4
    targets = choose_targets(g, 0, fanout=2, rng=random.Random(0), exclude=4)
    assert targets == [4]


def test_seen_cache_detects_duplicates():
    cache = SeenCache()
    assert not cache.seen_before("a")
    assert cache.seen_before("a")
    assert "a" in cache


def test_seen_cache_evicts_oldest():
    cache = SeenCache(capacity=2)
    cache.seen_before("a")
    cache.seen_before("b")
    cache.seen_before("c")  # evicts "a"
    assert "a" not in cache
    assert "b" in cache
    assert len(cache) == 2


def test_seen_cache_refreshes_on_hit():
    cache = SeenCache(capacity=2)
    cache.seen_before("a")
    cache.seen_before("b")
    cache.seen_before("a")  # refresh "a" so "b" is now oldest
    cache.seen_before("c")
    assert "a" in cache
    assert "b" not in cache


def test_seen_cache_capacity_validation():
    with pytest.raises(ConfigurationError):
        SeenCache(capacity=0)
