"""Tests for the BLATANT-S-style maintainer."""

import random

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.overlay import (
    BlatantConfig,
    BlatantMaintainer,
    OverlayGraph,
    average_path_length,
    build_blatant_overlay,
    is_connected,
    ring,
)
from repro.sim import Simulator


def test_config_validation():
    with pytest.raises(ConfigurationError):
        BlatantConfig(target_path_length=0.5)
    with pytest.raises(ConfigurationError):
        BlatantConfig(min_degree=0)


def test_converge_bounds_average_path_length():
    rng = random.Random(0)
    graph = ring(120)
    cfg = BlatantConfig(target_path_length=6.0)
    maintainer = BlatantMaintainer(graph, rng, cfg)
    apl = maintainer.converge()
    assert apl <= 6.5
    assert is_connected(graph)
    assert maintainer.links_added > 0


def test_converge_on_disconnected_graph_raises():
    graph = OverlayGraph()
    graph.add_node(1)
    graph.add_node(2)
    with pytest.raises(TopologyError):
        BlatantMaintainer(graph, random.Random(0)).converge()


def test_converge_gives_modest_degree():
    rng = random.Random(1)
    graph = build_blatant_overlay(150, rng, BlatantConfig(target_path_length=6.0))
    # bounded APL with a minimal number of links: degree stays small
    assert 2.0 <= graph.average_degree() <= 8.0


def test_build_blatant_overlay_size_validation():
    with pytest.raises(ConfigurationError):
        build_blatant_overlay(1, random.Random(0))


def test_join_connects_new_node():
    rng = random.Random(2)
    graph = ring(30)
    maintainer = BlatantMaintainer(graph, rng)
    maintainer.join(100)
    assert graph.has_node(100)
    assert graph.degree(100) == maintainer.config.bootstrap_degree


def test_join_first_node_into_empty_overlay():
    graph = OverlayGraph()
    maintainer = BlatantMaintainer(graph, random.Random(0))
    maintainer.join(0)
    assert graph.has_node(0)
    assert graph.degree(0) == 0


def test_online_maintenance_repairs_expanding_overlay():
    rng = random.Random(3)
    cfg = BlatantConfig(target_path_length=5.0, tick_interval=1.0)
    graph = ring(40)
    maintainer = BlatantMaintainer(graph, rng, cfg)
    maintainer.converge()
    sim = Simulator(seed=3)
    maintainer.start(sim)
    # Join 20 new nodes over time, then let ants integrate them.
    for i in range(20):
        sim.call_at(float(i), maintainer.join, 100 + i)
    sim.run_until(300.0)
    assert is_connected(graph)
    apl = average_path_length(graph, rng, sources=20)
    assert apl <= cfg.target_path_length + 1.5


def test_start_twice_raises():
    maintainer = BlatantMaintainer(ring(10), random.Random(0))
    sim = Simulator()
    maintainer.start(sim)
    with pytest.raises(ConfigurationError):
        maintainer.start(sim)


def test_tick_noop_on_tiny_graph():
    graph = OverlayGraph()
    graph.add_node(1)
    maintainer = BlatantMaintainer(graph, random.Random(0))
    maintainer.tick()  # must not raise
    assert maintainer.links_added == 0


def test_pruning_respects_min_degree():
    rng = random.Random(4)
    cfg = BlatantConfig(target_path_length=4.0, min_degree=2)
    graph = ring(60)
    maintainer = BlatantMaintainer(graph, rng, cfg)
    maintainer.converge()
    for _ in range(200):
        maintainer.tick()
    assert min(graph.degree(n) for n in graph.nodes()) >= cfg.min_degree
    assert is_connected(graph)
