"""Unit tests for static topology builders."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.overlay import (
    TOPOLOGY_BUILDERS,
    is_connected,
    random_regular,
    ring,
    scale_free,
    small_world,
)


def test_ring_structure():
    g = ring(6)
    assert len(g) == 6
    assert g.link_count == 6
    assert all(g.degree(n) == 2 for n in g.nodes())
    assert is_connected(g)


def test_ring_minimum_size():
    with pytest.raises(ConfigurationError):
        ring(1)


def test_random_regular_has_exact_degree():
    g = random_regular(50, 4, random.Random(0))
    assert all(g.degree(n) == 4 for n in g.nodes())
    assert is_connected(g)
    assert g.link_count == 100


def test_random_regular_validation():
    rng = random.Random(0)
    with pytest.raises(ConfigurationError):
        random_regular(10, 1, rng)
    with pytest.raises(ConfigurationError):
        random_regular(10, 10, rng)
    with pytest.raises(ConfigurationError):
        random_regular(9, 3, rng)  # odd size * odd degree


def test_small_world_is_connected_with_right_link_count():
    g = small_world(60, 4, random.Random(1))
    assert is_connected(g)
    assert g.link_count == 120  # rewiring preserves link count
    assert abs(g.average_degree() - 4.0) < 1e-9


def test_small_world_validation():
    rng = random.Random(0)
    with pytest.raises(ConfigurationError):
        small_world(10, 3, rng)  # odd degree
    with pytest.raises(ConfigurationError):
        small_world(10, 12, rng)
    with pytest.raises(ConfigurationError):
        small_world(10, 4, rng, rewire_p=1.5)


def test_small_world_zero_rewire_is_lattice():
    g = small_world(10, 4, random.Random(0), rewire_p=0.0)
    for n in range(10):
        for offset in (1, 2):
            assert g.has_link(n, (n + offset) % 10)


def test_scale_free_connected_with_hubs():
    g = scale_free(100, 2, random.Random(2))
    assert is_connected(g)
    degrees = sorted((g.degree(n) for n in g.nodes()), reverse=True)
    # preferential attachment produces hubs well above the minimum degree
    assert degrees[0] >= 3 * degrees[-1]
    assert degrees[-1] >= 2


def test_scale_free_validation():
    rng = random.Random(0)
    with pytest.raises(ConfigurationError):
        scale_free(10, 0, rng)
    with pytest.raises(ConfigurationError):
        scale_free(3, 3, rng)


def test_registry_builders_produce_connected_graphs():
    for name, builder in TOPOLOGY_BUILDERS.items():
        g = builder(40, random.Random(5))
        assert is_connected(g), name
        assert len(g) == 40, name
