"""Unit tests for topology metrics."""

import random

from repro.overlay import (
    OverlayGraph,
    average_path_length,
    bfs_distances,
    estimated_diameter,
    hop_distance,
    is_connected,
    ring,
)


def path_graph(n):
    g = OverlayGraph()
    for i in range(n):
        g.add_node(i)
    for i in range(n - 1):
        g.add_link(i, i + 1)
    return g


def test_bfs_distances_on_path():
    g = path_graph(5)
    assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}


def test_bfs_max_depth_limits_radius():
    g = path_graph(5)
    assert bfs_distances(g, 0, max_depth=2) == {0: 0, 1: 1, 2: 2}


def test_hop_distance():
    g = path_graph(5)
    assert hop_distance(g, 0, 4) == 4
    assert hop_distance(g, 2, 2) == 0
    assert hop_distance(g, 0, 4, max_depth=3) is None


def test_hop_distance_unreachable():
    g = path_graph(3)
    g.add_node(99)
    assert hop_distance(g, 0, 99) is None


def test_average_path_length_path3():
    # path 0-1-2: distances 1,2,1,1,2,1 over 6 ordered pairs => 4/3
    g = path_graph(3)
    assert abs(average_path_length(g) - 4 / 3) < 1e-12


def test_average_path_length_small_graphs():
    assert average_path_length(OverlayGraph()) == 0.0
    g = OverlayGraph()
    g.add_node(1)
    assert average_path_length(g) == 0.0


def test_average_path_length_sampling_close_to_exact():
    g = ring(100)
    exact = average_path_length(g)
    sampled = average_path_length(g, random.Random(3), sources=30)
    assert abs(exact - sampled) / exact < 0.15


def test_estimated_diameter_ring():
    g = ring(10)
    assert estimated_diameter(g) == 5


def test_estimated_diameter_trivial():
    g = OverlayGraph()
    assert estimated_diameter(g) == 0
    g.add_node(1)
    assert estimated_diameter(g) == 0


def test_is_connected():
    g = path_graph(4)
    assert is_connected(g)
    g.add_node(99)
    assert not is_connected(g)
    assert is_connected(OverlayGraph())
