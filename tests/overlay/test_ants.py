"""Unit tests for the ant agents."""

import random

from repro.overlay import DiscoveryAnt, OverlayGraph, PruningAnt, random_walk, ring


def test_random_walk_stays_on_links():
    g = ring(10)
    rng = random.Random(0)
    path = random_walk(g, 0, 20, rng)
    assert path[0] == 0
    for a, b in zip(path, path[1:]):
        assert g.has_link(a, b)


def test_random_walk_on_isolated_node_stops():
    g = OverlayGraph()
    g.add_node(1)
    assert random_walk(g, 1, 5, random.Random(0)) == [1]


def test_random_walk_avoids_backtracking_when_possible():
    # On a ring every node has 2 neighbours; after the first step the walk
    # must always move forward (never return to the previous node).
    g = ring(10)
    rng = random.Random(1)
    path = random_walk(g, 0, 9, rng)
    assert len(set(path)) == len(path)


def test_discovery_ant_reports_distance():
    g = ring(20)
    rng = random.Random(2)
    ant = DiscoveryAnt(g, 0, walk_length=6, rng=rng)
    assert ant.nest == 0
    assert ant.distance is not None
    assert 0 <= ant.distance <= 6


def test_discovery_ant_suggests_link_beyond_target():
    g = ring(40)
    rng = random.Random(3)
    # Long walks on a big ring end far away: with target 2 a link is due.
    for _ in range(10):
        ant = DiscoveryAnt(g, 0, walk_length=12, rng=rng)
        if ant.distance and ant.distance > 2:
            assert ant.suggests_link(2.0)
            return
    raise AssertionError("no ant walked further than 2 hops on a 40-ring")


def test_discovery_ant_never_links_to_self():
    g = ring(4)
    rng = random.Random(4)
    for _ in range(20):
        ant = DiscoveryAnt(g, 0, walk_length=4, rng=rng)
        if ant.endpoint == ant.nest:
            assert not ant.suggests_link(1.0)


def test_pruning_ant_detects_redundant_link():
    g = ring(4)  # on a 4-ring each link has a 3-hop alternative
    ant = PruningAnt(g, 0, 1, target_path_length=3.0)
    assert ant.redundant
    assert g.has_link(0, 1)  # probe must restore the link


def test_pruning_ant_detects_essential_link():
    g = ring(10)  # alternative path is 9 hops: beyond a target of 3
    ant = PruningAnt(g, 0, 1, target_path_length=3.0)
    assert not ant.redundant
    assert g.has_link(0, 1)
