"""Property tests for :class:`FloodReach` buffer reuse.

The evaluator reuses its visited map and frontier buffers across calls (a
generation stamp invalidates old entries).  These tests check that repeated
floods from random initiators on random graphs reach *exactly* the node set
a fresh-allocation reference implementation reaches — i.e. that buffer
reuse leaks no state between calls.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay import FloodPolicy, FloodReach, OverlayGraph, choose_targets


def reference_reach(graph, initiator, policy, rng):
    """Fresh-allocation reference: same flood shape, new containers per call."""
    visited = {initiator}
    frontier = [(initiator, None)]
    for _ in range(policy.max_hops):
        if not frontier:
            break
        next_frontier = []
        for node, came_from in frontier:
            for target in choose_targets(
                graph, node, policy.fanout, rng, exclude=came_from
            ):
                if target in visited:
                    continue
                visited.add(target)
                next_frontier.append((target, node))
        frontier = next_frontier
    return visited


def build_graph(node_count, edge_seed, extra_edges):
    """A connected random graph: a ring plus ``extra_edges`` chords."""
    graph = OverlayGraph()
    for i in range(node_count):
        graph.add_node(i)
    for i in range(node_count):
        graph.add_link(i, (i + 1) % node_count)
    rng = random.Random(edge_seed)
    for _ in range(extra_edges):
        a, b = rng.sample(range(node_count), 2)
        graph.add_link(a, b)
    return graph


@settings(max_examples=50, deadline=None)
@given(
    node_count=st.integers(min_value=3, max_value=40),
    edge_seed=st.integers(min_value=0, max_value=2**16),
    extra_edges=st.integers(min_value=0, max_value=60),
    max_hops=st.integers(min_value=1, max_value=6),
    fanout=st.integers(min_value=1, max_value=4),
    flood_seeds=st.lists(
        st.integers(min_value=0, max_value=2**16), min_size=1, max_size=8
    ),
)
def test_reused_buffers_match_fresh_allocation_reference(
    node_count, edge_seed, extra_edges, max_hops, fanout, flood_seeds
):
    graph = build_graph(node_count, edge_seed, extra_edges)
    policy = FloodPolicy(max_hops=max_hops, fanout=fanout)
    evaluator = FloodReach()  # ONE evaluator reused across all floods
    for flood_seed in flood_seeds:
        initiator = random.Random(flood_seed).randrange(node_count)
        reached = evaluator.reach(
            graph, initiator, policy, random.Random(flood_seed)
        )
        expected = reference_reach(
            graph, initiator, policy, random.Random(flood_seed)
        )
        assert reached == expected


def test_reach_includes_initiator_and_respects_hop_bound():
    graph = build_graph(10, edge_seed=1, extra_edges=0)  # plain ring
    policy = FloodPolicy(max_hops=2, fanout=2)
    evaluator = FloodReach()
    reached = evaluator.reach(graph, 0, policy, random.Random(7))
    assert 0 in reached
    # On a ring with fanout 2, two hops reach at most 2 nodes per side.
    assert reached <= {8, 9, 0, 1, 2}


def test_back_to_back_floods_do_not_leak_visited_state():
    graph = build_graph(12, edge_seed=3, extra_edges=5)
    policy = FloodPolicy(max_hops=3, fanout=2)
    evaluator = FloodReach()
    first = evaluator.reach(graph, 0, policy, random.Random(11))
    again = evaluator.reach(graph, 0, policy, random.Random(11))
    assert first == again  # identical rng => identical flood, no carryover
