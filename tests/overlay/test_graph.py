"""Unit tests for the overlay graph."""

import pytest

from repro.errors import TopologyError
from repro.overlay import OverlayGraph


def triangle():
    g = OverlayGraph()
    for n in (1, 2, 3):
        g.add_node(n)
    g.add_link(1, 2)
    g.add_link(2, 3)
    g.add_link(3, 1)
    return g


def test_add_and_query_nodes():
    g = OverlayGraph()
    g.add_node(1)
    g.add_node(2)
    assert g.has_node(1)
    assert 2 in g
    assert not g.has_node(3)
    assert len(g) == 2
    assert g.nodes() == [1, 2]


def test_duplicate_node_raises():
    g = OverlayGraph()
    g.add_node(1)
    with pytest.raises(TopologyError):
        g.add_node(1)


def test_add_link_is_undirected():
    g = triangle()
    assert g.has_link(1, 2)
    assert g.has_link(2, 1)
    assert g.neighbors(1) == [2, 3]
    assert g.degree(1) == 2


def test_add_link_twice_returns_false():
    g = triangle()
    assert g.add_link(1, 2) is False
    assert g.link_count == 3


def test_self_link_raises():
    g = triangle()
    with pytest.raises(TopologyError):
        g.add_link(1, 1)


def test_link_to_unknown_node_raises():
    g = triangle()
    with pytest.raises(TopologyError):
        g.add_link(1, 99)
    with pytest.raises(TopologyError):
        g.add_link(99, 1)


def test_remove_link():
    g = triangle()
    g.remove_link(1, 2)
    assert not g.has_link(1, 2)
    assert not g.has_link(2, 1)
    assert g.link_count == 2


def test_remove_missing_link_raises():
    g = triangle()
    g.remove_link(1, 2)
    with pytest.raises(TopologyError):
        g.remove_link(1, 2)


def test_remove_node_removes_its_links():
    g = triangle()
    g.remove_node(2)
    assert not g.has_node(2)
    assert g.neighbors(1) == [3]
    assert g.link_count == 1


def test_remove_unknown_node_raises():
    with pytest.raises(TopologyError):
        OverlayGraph().remove_node(7)


def test_neighbors_of_unknown_node_raises():
    with pytest.raises(TopologyError):
        triangle().neighbors(42)
    with pytest.raises(TopologyError):
        triangle().degree(42)


def test_links_iterates_each_link_once():
    g = triangle()
    assert sorted(g.links()) == [(1, 2), (1, 3), (2, 3)]


def test_average_degree():
    g = triangle()
    assert g.average_degree() == 2.0
    assert OverlayGraph().average_degree() == 0.0


def test_copy_is_independent():
    g = triangle()
    clone = g.copy()
    clone.remove_link(1, 2)
    assert g.has_link(1, 2)
    assert not clone.has_link(1, 2)
    assert g.link_count == 3
    assert clone.link_count == 2


def test_has_link_on_unknown_node_is_false():
    assert not triangle().has_link(42, 1)
