"""Unit tests for advance reservation and conservative backfill."""

import pytest

from repro.scheduling import (
    BackfillScheduler,
    ReservationScheduler,
    reservation_completion_times,
)
from repro.scheduling.base import QueuedJob
from repro.types import HOUR

from ..helpers import make_job


def reserved_job(job_id, ert, not_before, submit_time=0.0):
    return make_job(
        job_id, ert=ert, submit_time=submit_time, not_before=not_before
    )


def test_reservation_blocks_until_not_before():
    s = ReservationScheduler()
    s.enqueue(reserved_job(1, HOUR, not_before=5 * HOUR), HOUR, now=0.0)
    assert s.pop_next(now=1 * HOUR) is None
    assert s.next_wakeup(1 * HOUR) == 5 * HOUR
    popped = s.pop_next(now=5 * HOUR)
    assert popped.job.job_id == 1


def test_reservation_head_blocks_later_jobs():
    s = ReservationScheduler()
    s.enqueue(reserved_job(1, HOUR, not_before=5 * HOUR), HOUR, now=0.0)
    s.enqueue(make_job(2, ert=HOUR), HOUR, now=1.0)  # eligible immediately
    # Strict reservation: the machine is held, job 2 must wait.
    assert s.pop_next(now=2 * HOUR) is None


def test_unreserved_jobs_run_in_arrival_order():
    s = ReservationScheduler()
    s.enqueue(make_job(1, ert=HOUR), HOUR, now=0.0)
    s.enqueue(make_job(2, ert=HOUR), HOUR, now=1.0)
    assert s.pop_next(now=10.0).job.job_id == 1
    assert s.next_wakeup(10.0) is None


def test_backfill_fills_the_gap_with_fitting_job():
    s = BackfillScheduler()
    s.enqueue(reserved_job(1, HOUR, not_before=5 * HOUR), HOUR, now=0.0)
    s.enqueue(make_job(2, ert=2 * HOUR), 2 * HOUR, now=1.0)  # fits in 5h gap
    popped = s.pop_next(now=0.0)
    assert popped.job.job_id == 2  # backfilled
    assert s.pop_next(now=0.0) is None  # gap can't fit anything else
    assert s.pop_next(now=5 * HOUR).job.job_id == 1


def test_backfill_never_delays_the_reservation():
    s = BackfillScheduler()
    s.enqueue(reserved_job(1, HOUR, not_before=2 * HOUR), HOUR, now=0.0)
    s.enqueue(make_job(2, ert=3 * HOUR), 3 * HOUR, now=1.0)  # too long
    assert s.pop_next(now=0.0) is None
    assert s.next_wakeup(0.0) == 2 * HOUR


def test_backfill_picks_earliest_arrived_fitting_job():
    s = BackfillScheduler()
    s.enqueue(reserved_job(1, HOUR, not_before=10 * HOUR), HOUR, now=0.0)
    s.enqueue(make_job(2, ert=2 * HOUR), 2 * HOUR, now=1.0)
    s.enqueue(make_job(3, ert=1 * HOUR), 1 * HOUR, now=2.0)
    assert s.pop_next(now=0.0).job.job_id == 2  # arrival order among fits


def test_reservation_completion_times_insert_gaps():
    entries = [
        QueuedJob(reserved_job(1, HOUR, not_before=5 * HOUR), HOUR, 0.0),
        QueuedJob(make_job(2, ert=HOUR), HOUR, 1.0),
    ]
    etcs = reservation_completion_times(entries, now=0.0, running_remaining=0.0)
    assert etcs == [6 * HOUR, 7 * HOUR]  # idle 0..5h, then 1h each


def test_reservation_cost_includes_the_gap():
    s = ReservationScheduler()
    job = reserved_job(1, HOUR, not_before=5 * HOUR)
    cost = s.cost_of(job, HOUR, now=0.0, running_remaining=0.0)
    assert cost == 6 * HOUR  # cannot complete before reservation + ERTp


def test_reservation_cost_without_reservation_matches_fcfs():
    s = ReservationScheduler()
    s.enqueue(make_job(1, ert=2 * HOUR), 2 * HOUR, now=0.0)
    cost = s.cost_of(make_job(2, ert=HOUR), HOUR, now=0.0, running_remaining=HOUR)
    assert cost == 4 * HOUR


def test_schedulers_declare_reservation_support():
    from repro.scheduling import FCFSScheduler, make_scheduler

    assert ReservationScheduler.supports_reservations
    assert BackfillScheduler.supports_reservations
    assert not FCFSScheduler.supports_reservations
    assert make_scheduler("BACKFILL").name == "BACKFILL"
    assert make_scheduler("RESERVATION").name == "RESERVATION"
