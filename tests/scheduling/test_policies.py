"""Unit tests for policy ordering: FCFS, SJF, LJF, EDF, priority."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.scheduling import (
    AgingPriorityScheduler,
    EDFScheduler,
    FCFSScheduler,
    LJFScheduler,
    PriorityScheduler,
    SJFScheduler,
    make_scheduler,
)
from repro.types import HOUR

from ..helpers import make_job


def ids(entries):
    return [e.job.job_id for e in entries]


def test_fcfs_orders_by_arrival():
    s = FCFSScheduler()
    s.enqueue(make_job(1, ert=3 * HOUR), 3 * HOUR, now=0.0)
    s.enqueue(make_job(2, ert=1 * HOUR), 1 * HOUR, now=1.0)
    assert ids(s.ordered_queue()) == [1, 2]


def test_sjf_orders_by_ert():
    s = SJFScheduler()
    s.enqueue(make_job(1, ert=3 * HOUR), 3 * HOUR, now=0.0)
    s.enqueue(make_job(2, ert=1 * HOUR), 1 * HOUR, now=1.0)
    s.enqueue(make_job(3, ert=2 * HOUR), 2 * HOUR, now=2.0)
    assert ids(s.ordered_queue()) == [2, 3, 1]


def test_sjf_breaks_ert_ties_by_arrival():
    s = SJFScheduler()
    s.enqueue(make_job(1, ert=HOUR), HOUR, now=0.0)
    s.enqueue(make_job(2, ert=HOUR), HOUR, now=1.0)
    assert ids(s.ordered_queue()) == [1, 2]


def test_ljf_orders_longest_first():
    s = LJFScheduler()
    s.enqueue(make_job(1, ert=1 * HOUR), HOUR, now=0.0)
    s.enqueue(make_job(2, ert=3 * HOUR), 3 * HOUR, now=1.0)
    assert ids(s.ordered_queue()) == [2, 1]


def test_edf_orders_by_deadline():
    s = EDFScheduler()
    s.enqueue(make_job(1, ert=HOUR, deadline=10 * HOUR), HOUR, now=0.0)
    s.enqueue(make_job(2, ert=HOUR, deadline=5 * HOUR), HOUR, now=1.0)
    assert ids(s.ordered_queue()) == [2, 1]


def test_edf_rejects_deadline_free_jobs():
    s = EDFScheduler()
    with pytest.raises(SchedulingError):
        s.enqueue(make_job(1, ert=HOUR), HOUR, now=0.0)
    with pytest.raises(SchedulingError):
        s.cost_of(make_job(2, ert=HOUR), HOUR, 0.0, 0.0)


def test_priority_orders_by_priority_then_arrival():
    s = PriorityScheduler()
    s.enqueue(make_job(1, priority=0), HOUR, now=0.0)
    s.enqueue(make_job(2, priority=5), HOUR, now=1.0)
    s.enqueue(make_job(3, priority=5), HOUR, now=2.0)
    assert ids(s.ordered_queue()) == [2, 3, 1]


def test_aging_promotes_long_waiting_jobs():
    s = AgingPriorityScheduler(aging_interval=HOUR)
    s.enqueue(make_job(1, priority=0), HOUR, now=0.0)
    # 10 hours later a priority-5 job arrives; job 1 has aged 10 levels.
    s.enqueue(make_job(2, priority=5), HOUR, now=10 * HOUR)
    assert ids(s.ordered_queue()) == [1, 2]


def test_aging_respects_priority_for_fresh_jobs():
    s = AgingPriorityScheduler(aging_interval=HOUR)
    s.enqueue(make_job(1, priority=0), HOUR, now=0.0)
    s.enqueue(make_job(2, priority=5), HOUR, now=60.0)  # 1 min later
    assert ids(s.ordered_queue()) == [2, 1]


def test_aging_interval_validation():
    with pytest.raises(ConfigurationError):
        AgingPriorityScheduler(aging_interval=0.0)


def test_registry_constructs_all_policies():
    for name in ("FCFS", "SJF", "LJF", "EDF", "PRIORITY", "AGING"):
        scheduler = make_scheduler(name)
        assert scheduler.name in (name, "PRIORITY", "AGING")


def test_registry_is_case_insensitive():
    assert make_scheduler("fcfs").name == "FCFS"


def test_registry_rejects_unknown():
    with pytest.raises(ConfigurationError):
        make_scheduler("ROUND_ROBIN")
