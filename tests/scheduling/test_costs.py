"""Unit tests for the ETTC and NAL cost functions (paper §III-C)."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling import EDFScheduler, FCFSScheduler, SJFScheduler
from repro.scheduling.base import QueuedJob
from repro.scheduling.costs import completion_times, ettc, nal
from repro.types import HOUR

from ..helpers import make_job


def entry(job_id, ert, deadline=None, enqueue=0.0):
    job = make_job(job_id, ert=ert, deadline=deadline)
    return QueuedJob(job, ert, enqueue)


def test_completion_times_accumulate():
    order = [entry(1, HOUR), entry(2, 2 * HOUR)]
    etcs = completion_times(order, now=100.0, running_remaining=50.0)
    assert etcs == [100.0 + 50.0 + HOUR, 100.0 + 50.0 + 3 * HOUR]


def test_completion_times_reject_negative_remaining():
    with pytest.raises(SchedulingError):
        completion_times([], now=0.0, running_remaining=-1.0)


def test_ettc_is_relative_time():
    order = [entry(1, HOUR), entry(2, 2 * HOUR)]
    assert ettc(order, 2, now=500.0, running_remaining=0.0) == 3 * HOUR


def test_ettc_missing_job_raises():
    with pytest.raises(SchedulingError):
        ettc([entry(1, HOUR)], 99, now=0.0, running_remaining=0.0)


def test_ettc_on_empty_node_is_just_ertp():
    s = FCFSScheduler()
    assert s.cost_of(make_job(1, ert=HOUR), HOUR, now=0.0, running_remaining=0.0) == HOUR


def test_fcfs_cost_counts_whole_queue():
    s = FCFSScheduler()
    s.enqueue(make_job(1, ert=2 * HOUR), 2 * HOUR, now=0.0)
    cost = s.cost_of(make_job(2, ert=HOUR), HOUR, now=0.0, running_remaining=HOUR)
    assert cost == 4 * HOUR  # 1h running + 2h queued + 1h itself


def test_sjf_cost_lets_short_jobs_jump_queue():
    s = SJFScheduler()
    s.enqueue(make_job(1, ert=3 * HOUR), 3 * HOUR, now=0.0)
    # A 1h job slots before the queued 3h job under SJF.
    cost = s.cost_of(make_job(2, ert=HOUR), HOUR, now=0.0, running_remaining=0.0)
    assert cost == HOUR
    # The same probe under FCFS would cost 4h.
    f = FCFSScheduler()
    f.enqueue(make_job(1, ert=3 * HOUR), 3 * HOUR, now=0.0)
    assert f.cost_of(make_job(2, ert=HOUR), HOUR, now=0.0, running_remaining=0.0) == 4 * HOUR


def test_nal_all_on_time_is_negative_total_slack():
    # Two jobs, both comfortably before their deadlines.
    order = [
        entry(1, HOUR, deadline=4 * HOUR),
        entry(2, HOUR, deadline=10 * HOUR),
    ]
    value = nal(order, now=0.0, running_remaining=0.0)
    # ETC = 1h and 2h; slacks 3h and 8h; all on time => -(3h + 8h)
    assert value == -(3 * HOUR + 8 * HOUR)


def test_nal_late_jobs_contribute_positive_lateness():
    order = [
        entry(1, 2 * HOUR, deadline=HOUR),  # 1h late
        entry(2, HOUR, deadline=10 * HOUR),  # on time, but queue has lateness
    ]
    value = nal(order, now=0.0, running_remaining=0.0)
    # gamma1 = 1h - 2h = -1h (late: delta=1); gamma2 = 7h (on time in a
    # late queue: delta=0) => NAL = +1h
    assert value == HOUR


def test_nal_prefers_nodes_that_keep_deadlines():
    # NAL is computed over the whole hypothetical queue Q' (paper formula),
    # so a node where the probe would cause a missed deadline must quote a
    # strictly worse (higher) cost than an idle node that meets it.
    overloaded = EDFScheduler()
    overloaded.enqueue(
        make_job(1, ert=5 * HOUR, deadline=5.5 * HOUR), 5 * HOUR, now=0.0
    )
    idle = EDFScheduler()
    probe = make_job(2, ert=HOUR, deadline=2 * HOUR)
    late_cost = overloaded.cost_of(probe, HOUR, now=0.0, running_remaining=0.0)
    idle_cost = idle.cost_of(probe, HOUR, now=0.0, running_remaining=0.0)
    assert idle_cost < 0 <= late_cost


def test_nal_rewards_accumulated_slack():
    # Corollary of the whole-queue formula: when everything is on time the
    # cost is the *negated total slack*, so a queue of comfortable jobs
    # quotes lower than an empty one.  This is the paper-literal behaviour.
    busy = EDFScheduler()
    busy.enqueue(make_job(1, ert=HOUR, deadline=20 * HOUR), HOUR, now=0.0)
    idle = EDFScheduler()
    probe = make_job(2, ert=HOUR, deadline=6 * HOUR)
    busy_cost = busy.cost_of(probe, HOUR, now=0.0, running_remaining=0.0)
    idle_cost = idle.cost_of(probe, HOUR, now=0.0, running_remaining=0.0)
    assert busy_cost < idle_cost


def test_nal_requires_deadlines():
    with pytest.raises(SchedulingError):
        nal([entry(1, HOUR, deadline=None)], now=0.0, running_remaining=0.0)


def test_nal_uses_edf_order_for_etc():
    # Earlier-deadline job runs first, so the later one accumulates its ERTp.
    s = EDFScheduler()
    s.enqueue(make_job(1, ert=2 * HOUR, deadline=3 * HOUR), 2 * HOUR, now=0.0)
    probe = make_job(2, ert=HOUR, deadline=2.5 * HOUR)
    # Probe's deadline (2.5h) is earlier: it runs first, pushing job 1 to
    # ETC=3h (slack 0) while the probe finishes at 1h (slack 1.5h).
    cost = s.cost_of(probe, HOUR, now=0.0, running_remaining=0.0)
    assert cost == -(1.5 * HOUR + 0.0)
