"""Unit tests for the scheduler queue mechanics."""

import pytest

from repro.errors import SchedulingError
from repro.scheduling import FCFSScheduler
from repro.types import HOUR

from ..helpers import make_job


def test_enqueue_and_len():
    s = FCFSScheduler()
    s.enqueue(make_job(1), HOUR, now=0.0)
    s.enqueue(make_job(2), HOUR, now=1.0)
    assert len(s) == 2
    assert 1 in s and 2 in s and 3 not in s


def test_double_enqueue_raises():
    s = FCFSScheduler()
    s.enqueue(make_job(1), HOUR, now=0.0)
    with pytest.raises(SchedulingError):
        s.enqueue(make_job(1), HOUR, now=1.0)


def test_remove_returns_entry():
    s = FCFSScheduler()
    s.enqueue(make_job(1), HOUR, now=0.0)
    entry = s.remove(1)
    assert entry.job.job_id == 1
    assert len(s) == 0


def test_remove_missing_raises():
    with pytest.raises(SchedulingError):
        FCFSScheduler().remove(1)


def test_find():
    s = FCFSScheduler()
    s.enqueue(make_job(1), HOUR, now=0.0)
    assert s.find(1).job.job_id == 1
    assert s.find(2) is None


def test_pop_next_follows_policy_order():
    s = FCFSScheduler()
    s.enqueue(make_job(1), HOUR, now=0.0)
    s.enqueue(make_job(2), HOUR, now=1.0)
    assert s.pop_next().job.job_id == 1
    assert s.pop_next().job.job_id == 2
    assert s.pop_next() is None


def test_queued_and_ordered_queue_are_copies():
    s = FCFSScheduler()
    s.enqueue(make_job(1), HOUR, now=0.0)
    s.queued().clear()
    s.ordered_queue().clear()
    assert len(s) == 1


def test_waiting_time():
    s = FCFSScheduler()
    entry = s.enqueue(make_job(1), HOUR, now=10.0)
    assert entry.waiting_time(25.0) == 15.0


def test_hypothetical_order_does_not_mutate_queue():
    s = FCFSScheduler()
    s.enqueue(make_job(1), HOUR, now=0.0)
    order = s.hypothetical_order(make_job(2), HOUR)
    assert [e.job.job_id for e in order] == [1, 2]
    assert len(s) == 1
