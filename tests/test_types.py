"""Unit tests for shared types and formatting."""

from repro.types import HOUR, MINUTE, SECOND, format_duration


def test_time_constants():
    assert SECOND == 1.0
    assert MINUTE == 60.0
    assert HOUR == 3600.0


def test_format_duration_paper_style():
    assert format_duration(2.5 * HOUR) == "2h30m"
    assert format_duration(41 * HOUR + 40 * MINUTE) == "41h40m"
    assert format_duration(2 * HOUR) == "2h"
    assert format_duration(90) == "1m30s"
    assert format_duration(5 * MINUTE) == "5m"
    assert format_duration(45) == "45s"
    assert format_duration(0) == "0s"


def test_format_duration_negative():
    assert format_duration(-90) == "-1m30s"


def test_format_duration_rounds_to_seconds():
    assert format_duration(59.6) == "1m"
