"""Documentation coverage: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", "").startswith("repro"):
                yield name, member


def test_all_modules_have_docstrings():
    missing = [m.__name__ for m in iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_all_public_classes_and_functions_have_docstrings():
    missing = []
    for module in iter_modules():
        for name, member in public_members(module):
            if member.__module__ != module.__name__:
                continue  # re-export; documented at its definition site
            if not inspect.getdoc(member):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_methods_have_docstrings():
    missing = []
    for module in iter_modules():
        for name, member in public_members(module):
            if not inspect.isclass(member) or member.__module__ != module.__name__:
                continue
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not inspect.getdoc(attr):
                    missing.append(f"{module.__name__}.{name}.{attr_name}")
    assert not missing, f"undocumented public methods: {missing}"
